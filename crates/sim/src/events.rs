//! Deterministic discrete-event scheduling for scenarios.
//!
//! A [`Schedule`] maps ticks to [`Action`]s; [`Schedule::run`] drives a
//! [`crate::world::World`] one mainchain block per tick, firing
//! the tick's actions *before* the block is mined — so scheduled
//! transactions land in that tick's block.

use std::collections::BTreeMap;

use crate::world::{SimError, World};

/// One scripted action.
#[derive(Clone, Debug)]
pub enum Action {
    /// `ForwardTransfer(user, amount)` — queue an MC→SC transfer.
    ForwardTransfer(String, u64),
    /// `ScPay(from, to, amount)` — a sidechain payment.
    ScPay(String, String, u64),
    /// `ScWithdraw(user, amount)` — initiate an SC→MC withdrawal.
    ScWithdraw(String, u64),
    /// Start withholding certificates (liveness fault).
    WithholdCertificates,
    /// Resume certificate submission.
    ResumeCertificates,
    /// Inject a mainchain fork of the given depth.
    McFork(u64),
}

/// A tick-indexed script of actions.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    actions: BTreeMap<u64, Vec<Action>>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an action at `tick` (0-based; tick `t` fires before the
    /// `t`-th mined block).
    pub fn at(mut self, tick: u64, action: Action) -> Self {
        self.actions.entry(tick).or_default().push(action);
        self
    }

    /// Number of scheduled ticks.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Runs `ticks` steps of `world`, firing scheduled actions.
    ///
    /// Action failures are tolerated and counted in
    /// `world.metrics.rejections` (fault scenarios schedule actions that
    /// are *supposed* to fail); step failures abort.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from `World::step`.
    pub fn run(&self, world: &mut World, ticks: u64) -> Result<(), SimError> {
        for tick in 0..ticks {
            if let Some(actions) = self.actions.get(&tick) {
                for action in actions {
                    let result = match action {
                        Action::ForwardTransfer(user, amount) => {
                            world.queue_forward_transfer(user, *amount)
                        }
                        Action::ScPay(from, to, amount) => world.sc_pay(from, to, *amount),
                        Action::ScWithdraw(user, amount) => world.sc_withdraw(user, *amount),
                        Action::WithholdCertificates => {
                            world.withhold_certificates = true;
                            Ok(())
                        }
                        Action::ResumeCertificates => {
                            world.withhold_certificates = false;
                            Ok(())
                        }
                        Action::McFork(depth) => world.inject_mc_fork(*depth).map(|_| ()),
                    };
                    if result.is_err() {
                        world.metrics.rejections += 1;
                    }
                }
            }
            world.step()?;
        }
        Ok(())
    }
}
