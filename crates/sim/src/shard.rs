//! Per-sidechain shards: the unit of parallelism in the sharded
//! simulation world.
//!
//! Zendoo's decoupling claim (§1: the mainchain never executes
//! sidechain logic) makes the per-tick sidechain phase embarrassingly
//! parallel: each sidechain node only consumes the mined mainchain
//! block. A [`SidechainShard`] owns everything one sidechain needs for
//! that phase — the deployed [`ScInstance`], its fault flags, its
//! per-chain [`ShardMetrics`] and its partition of the router's
//! in-flight inbound queue — and
//! [`SidechainShard::sync_and_certify`] performs one tick of work,
//! returning an ordered [`ShardEffects`] log instead of mutating any
//! coordinator state.
//!
//! The coordinator (`World::step`) applies effect logs in sidechain
//! **declaration order**, which is what makes a parallel step
//! bit-identical to a serial one: the only shard→coordinator channel
//! is the effect log, and its application order is fixed regardless of
//! thread scheduling. See `docs/SCENARIOS.md` and the "Concurrency
//! model" section of `ARCHITECTURE.md`.
//!
//! Shards also contain **panics**: a panicking shard is quarantined
//! (its sidechain stops syncing and certifying — from the mainchain's
//! point of view, exactly the liveness fault of Def 4.2, so the chain
//! eventually ceases) while the rest of the world keeps stepping.

use std::time::Instant;

use zendoo_core::certificate::WithdrawalCertificate;
use zendoo_core::crosschain::CrossChainTransfer;
use zendoo_core::ids::SidechainId;
use zendoo_latus::node::NodeError;
use zendoo_mainchain::Block;
use zendoo_telemetry::Snapshot;

use crate::world::ScInstance;

/// How `World::step` executes its per-sidechain phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepMode {
    /// The reference implementation: the legacy per-candidate greedy
    /// block fill (inline proof verification at build *and* submit)
    /// followed by a sequential walk over the shards. Kept as the
    /// determinism oracle and the benchmark baseline.
    Serial,
    /// The sharded coordinator: one-pass block preparation with
    /// recorded proof verdicts reused at submission, and the
    /// per-sidechain phase fanned out over scoped worker threads while
    /// the coordinator overlaps the block's stage-2/3 submission.
    /// Outcomes are bit-identical to [`StepMode::Serial`] (enforced by
    /// `tests/determinism.rs`).
    Sharded {
        /// Worker-thread count; `None` uses one lane per available
        /// core. Clamped to the shard count; `1` short-circuits to an
        /// in-thread loop with no spawn overhead.
        workers: Option<usize>,
    },
}

impl Default for StepMode {
    /// Sharded with one worker lane per available core.
    fn default() -> Self {
        StepMode::Sharded { workers: None }
    }
}

/// Per-sidechain counters, owned by the shard itself (the global
/// [`crate::metrics::Metrics`] aggregates across chains).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Sidechain blocks forged by this chain.
    pub sc_blocks: u64,
    /// Certificates this chain produced.
    pub certificates_produced: u64,
    /// Certificate opportunities deliberately withheld (fault).
    pub certificates_withheld: u64,
    /// Sidechain blocks reverted by mainchain reorgs.
    pub sc_blocks_reverted: u64,
    /// Contained panics (each one quarantines the shard).
    pub panics: u64,
}

/// The ordered effect log one shard produces for one tick. The
/// coordinator folds these into the global metrics and mempool in
/// declaration order, so the outcome is independent of which worker
/// thread ran which shard when.
#[derive(Debug)]
pub struct ShardEffects {
    /// The shard's sidechain.
    pub id: SidechainId,
    /// Whether a sidechain block was forged this tick.
    pub forged: bool,
    /// A certificate produced at an epoch boundary, for the
    /// coordinator to queue on the mainchain.
    pub certificate: Option<Box<WithdrawalCertificate>>,
    /// An epoch boundary was reached but certification was withheld
    /// (the scripted liveness fault).
    pub withheld: bool,
    /// A contained panic payload; the shard quarantined itself.
    pub panicked: Option<String>,
    /// A node error (distinct from a panic: state was rolled back by
    /// the node itself).
    pub error: Option<NodeError>,
    /// Wall-clock nanoseconds this shard's tick took (feeds the
    /// work/span accounting in `BENCH_sharded_sim.json`).
    pub nanos: u64,
    /// The shard-local telemetry recorded during this tick (present
    /// only when the world is recording). Shards never touch the
    /// world's recorder directly: the coordinator absorbs these
    /// snapshots in declaration order, so the aggregate is identical
    /// whichever worker thread ran which shard when.
    pub telemetry: Option<Snapshot>,
}

/// One sidechain's slice of the world: the deployed instance plus the
/// shard-local fault flags, metrics and inbound view.
pub struct SidechainShard {
    pub(crate) instance: ScInstance,
    /// Per-chain withheld-certificate fault.
    pub(crate) withheld: bool,
    /// Set once a panic was contained; a quarantined shard no longer
    /// syncs or certifies (its chain will cease on the mainchain).
    pub(crate) quarantined: bool,
    /// Fault injection: panic on the next sync (before any node
    /// mutation, so the quarantined node state stays consistent).
    pub(crate) panic_next_sync: bool,
    pub(crate) metrics: ShardMetrics,
    /// This chain's partition of the router's in-flight inbound queue,
    /// refreshed each tick (no shard ever touches the router itself).
    pub(crate) pending_inbound: Vec<CrossChainTransfer>,
}

impl SidechainShard {
    pub(crate) fn new(instance: ScInstance) -> Self {
        SidechainShard {
            instance,
            withheld: false,
            quarantined: false,
            panic_next_sync: false,
            metrics: ShardMetrics::default(),
            pending_inbound: Vec::new(),
        }
    }

    /// The shard's sidechain id.
    pub fn id(&self) -> SidechainId {
        self.instance.id
    }

    /// The deployed sidechain instance.
    pub fn instance(&self) -> &ScInstance {
        &self.instance
    }

    /// The shard-local metrics.
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// Returns `true` once a contained panic quarantined this shard.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The transfers currently routed toward this chain (escrowed on
    /// the mainchain, awaiting maturity) as of the last tick — the
    /// shard's private copy of the router partition.
    pub fn pending_inbound(&self) -> &[CrossChainTransfer] {
        &self.pending_inbound
    }

    /// One tick of shard work: adopt the freshly mined mainchain
    /// block, forge the corresponding sidechain block and — at an epoch
    /// boundary — produce (or deliberately withhold) the withdrawal
    /// certificate. Panics are contained: the shard quarantines itself
    /// and reports the payload in [`ShardEffects::panicked`].
    pub(crate) fn sync_and_certify(
        &mut self,
        block: &Block,
        withhold_all: bool,
        inbound: Vec<CrossChainTransfer>,
        record: bool,
    ) -> ShardEffects {
        let start = Instant::now();
        let id = self.instance.id;
        self.pending_inbound = inbound;
        let mut effects = ShardEffects {
            id,
            forged: false,
            certificate: None,
            withheld: false,
            panicked: None,
            error: None,
            nanos: 0,
            telemetry: None,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.tick(block, withhold_all)
        }));
        match outcome {
            Ok(Ok((forged, certificate, withheld))) => {
                effects.forged = forged;
                effects.certificate = certificate;
                effects.withheld = withheld;
                if forged {
                    self.metrics.sc_blocks += 1;
                }
                if effects.certificate.is_some() {
                    self.metrics.certificates_produced += 1;
                }
                if withheld {
                    self.metrics.certificates_withheld += 1;
                }
            }
            Ok(Err(error)) => {
                effects.error = Some(error);
            }
            Err(payload) => {
                self.quarantined = true;
                self.metrics.panics += 1;
                effects.panicked = Some(panic_message(payload));
            }
        }
        effects.nanos = start.elapsed().as_nanos() as u64;
        if record {
            let mut snapshot = Snapshot::default();
            snapshot.add_span("tick.shard.sync", effects.nanos);
            if effects.forged {
                snapshot.add_counter("shard.sc_blocks_forged", 1);
            }
            if effects.certificate.is_some() {
                snapshot.add_counter("shard.certificates_produced", 1);
            }
            if effects.withheld {
                snapshot.add_counter("shard.certificates_withheld", 1);
            }
            if effects.panicked.is_some() {
                snapshot.add_counter("shard.panics", 1);
            }
            if effects.error.is_some() {
                snapshot.add_counter("shard.node_errors", 1);
            }
            effects.telemetry = Some(snapshot);
        }
        effects
    }

    /// The fallible tick body `sync_and_certify` wraps with panic
    /// containment.
    #[allow(clippy::type_complexity)]
    fn tick(
        &mut self,
        block: &Block,
        withhold_all: bool,
    ) -> Result<(bool, Option<Box<WithdrawalCertificate>>, bool), NodeError> {
        if self.panic_next_sync {
            self.panic_next_sync = false;
            panic!("injected shard fault on {}", self.instance.label);
        }
        self.instance.node.sync_mainchain_block(block)?;
        if !self.instance.node.epoch_complete() {
            return Ok((true, None, false));
        }
        if withhold_all || self.withheld {
            // The sidechain stops certifying entirely: a node that
            // never published its certificate cannot prove later
            // epochs either (the proof chain is broken) — exactly the
            // liveness fault Def 4.2 punishes with ceasing.
            return Ok((true, None, true));
        }
        let certificate = self.instance.node.produce_certificate()?;
        Ok((true, Some(Box::new(certificate)), false))
    }
}

/// Renders a caught panic payload (the common `&str`/`String` cases).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "shard panicked with a non-string payload".to_string()
    }
}
