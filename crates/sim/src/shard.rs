//! Per-sidechain shards: the unit of parallelism in the sharded
//! simulation world.
//!
//! Zendoo's decoupling claim (§1: the mainchain never executes
//! sidechain logic) makes the per-tick sidechain phase embarrassingly
//! parallel: each sidechain node only consumes the mined mainchain
//! block. A [`SidechainShard`] owns everything one sidechain needs for
//! that phase — the deployed [`ScInstance`], its fault flags, its
//! per-chain [`ShardMetrics`] and its partition of the router's
//! in-flight inbound queue — and
//! [`SidechainShard::sync_and_certify`] performs one tick of work,
//! returning an ordered [`ShardEffects`] log instead of mutating any
//! coordinator state.
//!
//! The coordinator (`World::step`) applies effect logs in sidechain
//! **declaration order**, which is what makes a parallel step
//! bit-identical to a serial one: the only shard→coordinator channel
//! is the effect log, and its application order is fixed regardless of
//! thread scheduling. See `docs/SCENARIOS.md` and the "Concurrency
//! model" section of `ARCHITECTURE.md`.
//!
//! Shards also contain **panics**: a panicking shard is quarantined
//! (its sidechain stops syncing and certifying — from the mainchain's
//! point of view, exactly the liveness fault of Def 4.2, so the chain
//! eventually ceases) while the rest of the world keeps stepping.

use std::time::Instant;

use zendoo_core::certificate::WithdrawalCertificate;
use zendoo_core::crosschain::CrossChainTransfer;
use zendoo_core::ids::SidechainId;
use zendoo_latus::node::NodeError;
use zendoo_mainchain::Block;
use zendoo_telemetry::Snapshot;

use crate::world::ScInstance;

/// How `World::step` executes its per-sidechain phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepMode {
    /// The reference implementation: the legacy per-candidate greedy
    /// block fill (inline proof verification at build *and* submit)
    /// followed by a sequential walk over the shards. Kept as the
    /// determinism oracle and the benchmark baseline.
    Serial,
    /// The sharded coordinator: one-pass block preparation with
    /// recorded proof verdicts reused at submission, and the
    /// per-sidechain phase fanned out over scoped worker threads while
    /// the coordinator overlaps the block's stage-2/3 submission.
    /// Outcomes are bit-identical to [`StepMode::Serial`] (enforced by
    /// `tests/determinism.rs`).
    Sharded {
        /// Worker-thread count; `None` uses one lane per available
        /// core. Clamped to the shard count; `1` short-circuits to an
        /// in-thread loop with no spawn overhead.
        workers: Option<usize>,
    },
}

impl Default for StepMode {
    /// Sharded with one worker lane per available core.
    fn default() -> Self {
        StepMode::Sharded { workers: None }
    }
}

/// Per-sidechain counters, owned by the shard itself (the global
/// [`crate::metrics::Metrics`] aggregates across chains).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Sidechain blocks forged by this chain.
    pub sc_blocks: u64,
    /// Certificates this chain produced.
    pub certificates_produced: u64,
    /// Certificate opportunities deliberately withheld (fault).
    pub certificates_withheld: u64,
    /// Sidechain blocks reverted by mainchain reorgs.
    pub sc_blocks_reverted: u64,
    /// Contained panics (each one quarantines the shard).
    pub panics: u64,
    /// Canonical mainchain blocks buffered while the shard was
    /// partitioned or following an equivocating relay.
    pub blocks_buffered: u64,
    /// Buffered blocks replayed into the node after a heal.
    pub blocks_replayed: u64,
    /// Equivocating sibling blocks accepted from a faulty relay.
    pub equivocations: u64,
}

/// The ordered effect log one shard produces for one tick. The
/// coordinator folds these into the global metrics and mempool in
/// declaration order, so the outcome is independent of which worker
/// thread ran which shard when.
#[derive(Debug)]
pub struct ShardEffects {
    /// The shard's sidechain.
    pub id: SidechainId,
    /// Sidechain blocks forged this tick (catch-up after a heal can
    /// forge several: the whole backlog plus the current block).
    pub forged: u64,
    /// Certificates produced at the epoch boundaries crossed this
    /// tick, in epoch order, for the coordinator to queue on the
    /// mainchain.
    pub certificates: Vec<WithdrawalCertificate>,
    /// Epoch boundaries crossed with certification withheld (the
    /// scripted liveness fault).
    pub withheld: u64,
    /// The mainchain block was buffered instead of synced: the shard
    /// is partitioned from the mainchain or stuck on an equivocated
    /// sibling block.
    pub stalled: bool,
    /// Buffered canonical blocks replayed into the node this tick
    /// (non-zero on the first sync after a heal).
    pub replayed: u64,
    /// A contained panic payload; the shard quarantined itself.
    pub panicked: Option<String>,
    /// A node error (distinct from a panic: state was rolled back by
    /// the node itself).
    pub error: Option<NodeError>,
    /// Wall-clock nanoseconds this shard's tick took (feeds the
    /// work/span accounting in `BENCH_sharded_sim.json`).
    pub nanos: u64,
    /// The shard-local telemetry recorded during this tick (present
    /// only when the world is recording). Shards never touch the
    /// world's recorder directly: the coordinator absorbs these
    /// snapshots in declaration order, so the aggregate is identical
    /// whichever worker thread ran which shard when.
    pub telemetry: Option<Snapshot>,
}

/// One sidechain's slice of the world: the deployed instance plus the
/// shard-local fault flags, metrics and inbound view.
pub struct SidechainShard {
    pub(crate) instance: ScInstance,
    /// Per-chain withheld-certificate fault.
    pub(crate) withheld: bool,
    /// Set once a panic was contained; a quarantined shard no longer
    /// syncs or certifies (its chain will cease on the mainchain).
    pub(crate) quarantined: bool,
    /// Fault injection: panic on the next sync (before any node
    /// mutation, so the quarantined node state stays consistent).
    pub(crate) panic_next_sync: bool,
    /// Network-partition fault: while `Some`, the shard receives no
    /// mainchain blocks (the coordinator's deliveries accumulate in
    /// `backlog`). The anchor is the last canonical block the node
    /// synced before the partition, so a reorg below it knows the node
    /// must roll back.
    pub(crate) partitioned: Option<zendoo_primitives::digest::Digest32>,
    /// Relay-equivocation fault: while `Some`, the node has adopted a
    /// sibling block from an equivocating relay and cannot extend the
    /// canonical chain (every canonical delivery would be
    /// non-contiguous). The anchor is the sibling's parent — the last
    /// canonical block both histories share — and the heal rolls the
    /// node back to it before replaying the backlog.
    pub(crate) diverged: Option<zendoo_primitives::digest::Digest32>,
    /// Canonical blocks withheld from the node while partitioned or
    /// diverged, replayed in order on the first sync after the heal.
    pub(crate) backlog: Vec<Block>,
    /// Adversarial-certifier fault: while set, every honest
    /// certificate this shard produces is raced on the mainchain by
    /// forged competitors the coordinator injects (see
    /// `World::start_quality_war`).
    pub(crate) quality_war: bool,
    pub(crate) metrics: ShardMetrics,
    /// This chain's partition of the router's in-flight inbound queue,
    /// refreshed each tick (no shard ever touches the router itself).
    pub(crate) pending_inbound: Vec<CrossChainTransfer>,
}

impl SidechainShard {
    pub(crate) fn new(instance: ScInstance) -> Self {
        SidechainShard {
            instance,
            withheld: false,
            quarantined: false,
            panic_next_sync: false,
            partitioned: None,
            diverged: None,
            backlog: Vec::new(),
            quality_war: false,
            metrics: ShardMetrics::default(),
            pending_inbound: Vec::new(),
        }
    }

    /// The shard's sidechain id.
    pub fn id(&self) -> SidechainId {
        self.instance.id
    }

    /// The deployed sidechain instance.
    pub fn instance(&self) -> &ScInstance {
        &self.instance
    }

    /// The shard-local metrics.
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// Returns `true` once a contained panic quarantined this shard.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Returns `true` while the shard is partitioned from the
    /// mainchain (`World::inject_partition`).
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.is_some()
    }

    /// Returns `true` while the node follows an equivocated sibling
    /// block (`World::inject_relay_equivocation`).
    pub fn is_diverged(&self) -> bool {
        self.diverged.is_some()
    }

    /// Canonical blocks currently buffered, awaiting a heal.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Returns `true` while this shard's honest certificates are raced
    /// by injected forged competitors.
    pub fn in_quality_war(&self) -> bool {
        self.quality_war
    }

    /// The transfers currently routed toward this chain (escrowed on
    /// the mainchain, awaiting maturity) as of the last tick — the
    /// shard's private copy of the router partition.
    pub fn pending_inbound(&self) -> &[CrossChainTransfer] {
        &self.pending_inbound
    }

    /// One tick of shard work: adopt the freshly mined mainchain
    /// block, forge the corresponding sidechain block and — at an epoch
    /// boundary — produce (or deliberately withhold) the withdrawal
    /// certificate. Panics are contained: the shard quarantines itself
    /// and reports the payload in [`ShardEffects::panicked`].
    ///
    /// A partitioned or diverged shard does no node work at all: the
    /// block is buffered and the effects report `stalled`. The first
    /// sync after a heal replays the whole backlog before the current
    /// block — crossing every epoch boundary the shard missed, so
    /// late certificates are produced (and rejected by the mainchain
    /// if the submission window already closed: Def 4.2 ceasing is
    /// decided by the mainchain, never by the faulty shard).
    pub(crate) fn sync_and_certify(
        &mut self,
        block: &Block,
        withhold_all: bool,
        inbound: Vec<CrossChainTransfer>,
        record: bool,
    ) -> ShardEffects {
        let start = Instant::now();
        let id = self.instance.id;
        self.pending_inbound = inbound;
        let mut effects = ShardEffects {
            id,
            forged: 0,
            certificates: Vec::new(),
            withheld: 0,
            stalled: false,
            replayed: 0,
            panicked: None,
            error: None,
            nanos: 0,
            telemetry: None,
        };
        if self.partitioned.is_some() || self.diverged.is_some() {
            self.backlog.push(block.clone());
            self.metrics.blocks_buffered += 1;
            effects.stalled = true;
            effects.nanos = start.elapsed().as_nanos() as u64;
            if record {
                let mut snapshot = Snapshot::default();
                snapshot.add_span("tick.shard.sync", effects.nanos);
                snapshot.add_counter("shard.blocks_buffered", 1);
                effects.telemetry = Some(snapshot);
            }
            return effects;
        }
        let backlog = std::mem::take(&mut self.backlog);
        let replay = backlog.len() as u64;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.catch_up(&backlog, block, withhold_all)
        }));
        match outcome {
            Ok(Ok((forged, certificates, withheld))) => {
                effects.forged = forged;
                effects.certificates = certificates;
                effects.withheld = withheld;
                effects.replayed = replay;
                self.metrics.sc_blocks += forged;
                self.metrics.certificates_produced += effects.certificates.len() as u64;
                self.metrics.certificates_withheld += withheld;
                self.metrics.blocks_replayed += replay;
            }
            Ok(Err(error)) => {
                effects.error = Some(error);
            }
            Err(payload) => {
                self.quarantined = true;
                self.metrics.panics += 1;
                effects.panicked = Some(panic_message(payload));
            }
        }
        effects.nanos = start.elapsed().as_nanos() as u64;
        if record {
            let mut snapshot = Snapshot::default();
            snapshot.add_span("tick.shard.sync", effects.nanos);
            if effects.forged > 0 {
                snapshot.add_counter("shard.sc_blocks_forged", effects.forged);
            }
            if !effects.certificates.is_empty() {
                snapshot.add_counter(
                    "shard.certificates_produced",
                    effects.certificates.len() as u64,
                );
            }
            if effects.withheld > 0 {
                snapshot.add_counter("shard.certificates_withheld", effects.withheld);
            }
            if effects.replayed > 0 {
                snapshot.add_counter("shard.blocks_replayed", effects.replayed);
            }
            if effects.panicked.is_some() {
                snapshot.add_counter("shard.panics", 1);
            }
            if effects.error.is_some() {
                snapshot.add_counter("shard.node_errors", 1);
            }
            effects.telemetry = Some(snapshot);
        }
        effects
    }

    /// Replays the healed backlog, then the current block, through
    /// [`SidechainShard::tick`], aggregating
    /// `(forged, certificates, withheld)` across every block. On an
    /// error the partial work stays in the node (the node rolled its
    /// own state back for the failing block only) and the remaining
    /// blocks are dropped — the shard then stalls like any other
    /// liveness-faulty chain.
    #[allow(clippy::type_complexity)]
    fn catch_up(
        &mut self,
        backlog: &[Block],
        current: &Block,
        withhold_all: bool,
    ) -> Result<(u64, Vec<WithdrawalCertificate>, u64), NodeError> {
        let mut forged = 0;
        let mut certificates = Vec::new();
        let mut withheld = 0;
        for block in backlog.iter().chain(std::iter::once(current)) {
            let (f, certificate, w) = self.tick(block, withhold_all)?;
            if f {
                forged += 1;
            }
            if let Some(certificate) = certificate {
                certificates.push(*certificate);
            }
            if w {
                withheld += 1;
            }
        }
        Ok((forged, certificates, withheld))
    }

    /// The fallible per-block body `sync_and_certify` wraps with panic
    /// containment. Also used by `World::inject_mc_fork` for the
    /// replacement branch's tip — the one replayed block beyond the
    /// pre-fork chain, whose epoch boundary (if any) must still
    /// certify.
    #[allow(clippy::type_complexity)]
    pub(crate) fn tick(
        &mut self,
        block: &Block,
        withhold_all: bool,
    ) -> Result<(bool, Option<Box<WithdrawalCertificate>>, bool), NodeError> {
        if self.panic_next_sync {
            self.panic_next_sync = false;
            panic!("injected shard fault on {}", self.instance.label);
        }
        self.instance.node.sync_mainchain_block(block)?;
        if !self.instance.node.epoch_complete() {
            return Ok((true, None, false));
        }
        if withhold_all || self.withheld {
            // The sidechain stops certifying entirely: a node that
            // never published its certificate cannot prove later
            // epochs either (the proof chain is broken) — exactly the
            // liveness fault Def 4.2 punishes with ceasing.
            return Ok((true, None, true));
        }
        let certificate = match self.instance.node.produce_certificate() {
            Ok(certificate) => certificate,
            // A certifier that cannot assemble this epoch's proof —
            // e.g. the previous certificate's inclusion was
            // disconnected by a reorg and never re-observed, so the
            // recursive proof chain is broken — publishes nothing and
            // the mainchain ceases the chain (Def 4.2). That is a
            // liveness fault of the Byzantine environment, not a
            // simulator error; only real proving failures propagate.
            Err(NodeError::Unavailable(_)) => return Ok((true, None, true)),
            Err(error) => return Err(error),
        };
        Ok((true, Some(Box::new(certificate)), false))
    }
}

/// Renders a caught panic payload (the common `&str`/`String` cases).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "shard panicked with a non-string payload".to_string()
    }
}
