//! # zendoo-sim
//!
//! A deterministic multi-sidechain scenario simulator for the Zendoo
//! reproduction: a [`world::World`] wires a real mainchain to any
//! number of real Latus nodes plus a cross-chain router,
//! [`events::Schedule`] scripts tick-indexed actions (transfers,
//! payments, withdrawals, cross-chain hops, faults), and [`scenarios`]
//! provides the canned experiments used by tests and benchmarks —
//! including the liveness fault (withheld certificates → ceasing),
//! mainchain fork injection (§5.1's fork-resolution property) and
//! sidechain→sidechain transfer lifecycles.
//!
//! # Examples
//!
//! ```no_run
//! use zendoo_sim::scenarios;
//!
//! let world = scenarios::happy_path(2).unwrap();
//! println!("{}", world.metrics.report());
//! assert!(world.conservation_holds());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod metrics;
pub mod scenarios;
pub mod world;

pub use events::{Action, Schedule};
pub use metrics::Metrics;
pub use world::{ScInstance, SimConfig, SimError, User, World};
