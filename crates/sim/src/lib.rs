//! # zendoo-sim
//!
//! A deterministic multi-sidechain scenario simulator for the Zendoo
//! reproduction: a [`world::World`] wires a real mainchain to any
//! number of real Latus nodes plus a cross-chain router,
//! [`events::Schedule`] scripts tick-indexed actions (transfers,
//! payments, withdrawals, cross-chain hops, faults), and [`scenarios`]
//! provides the canned experiments used by tests and benchmarks —
//! including the liveness fault (withheld certificates → ceasing),
//! mainchain fork injection (§5.1's fork-resolution property) and
//! sidechain→sidechain transfer lifecycles.
//!
//! # Sharded stepping
//!
//! The world is an MC-side **coordinator** plus one [`shard`] per
//! sidechain; since the mainchain never executes sidechain logic (the
//! paper's decoupling), the per-tick sidechain phase fans out over
//! worker threads under [`shard::StepMode::Sharded`]:
//!
//! ```text
//!                ┌──────────── coordinator ────────────┐
//!  tick t:       │ router snapshot → settle matured    │
//!                │ prepare block (one-pass, records    │
//!                │ proof verdicts)                     │
//!                ├──── scoped worker threads ──────────┤
//!                │ submit block     ║ shard sc-0 sync  │
//!                │ (stage 2 reuses  ║ shard sc-1 sync  │
//!                │  verdicts,       ║ shard sc-2 …     │
//!                │  stage 3 applies)║   + certify      │
//!                ├─────────────────────────────────────┤
//!                │ apply ShardEffects in declaration   │
//!                │ order; fold receipts into metrics   │
//!                └─────────────────────────────────────┘
//! ```
//!
//! Shards return ordered effect logs the coordinator applies in
//! declaration order, so a sharded step is **bit-identical** to a
//! serial step (`tests/determinism.rs`); a panicking shard is
//! quarantined and its chain ceases like any liveness-faulty
//! sidechain. See the "Concurrency model" section of `ARCHITECTURE.md`
//! and `docs/SCENARIOS.md` for the scenario ↔ paper map.
//!
//! # Examples
//!
//! ```no_run
//! use zendoo_sim::scenarios;
//!
//! let world = scenarios::happy_path(2).unwrap();
//! println!("{}", world.metrics.report());
//! assert!(world.conservation_holds());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod coordinator;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod scenarios;
pub mod shard;
pub mod world;

pub use audit::{AuditSnapshot, AuditViolation, ConservationAuditor};
pub use events::{Action, Schedule};
pub use faults::{Fault, FaultPlan, RunError};
pub use metrics::Metrics;
pub use shard::{ShardEffects, ShardMetrics, SidechainShard, StepMode};
pub use world::{ScInstance, SimConfig, SimError, User, World};
pub use zendoo_mainchain::pipeline::VerifyMode;
