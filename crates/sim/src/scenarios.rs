//! Canned scenarios used by tests, examples and benchmarks.
//!
//! `docs/SCENARIOS.md` maps each scenario (and each `examples/*.rs`
//! program) to the paper section it reproduces. The `*_storm`/
//! `*_cascade`/`*_soak` family composes several Byzantine faults in
//! one run and audits conservation every tick (see [`crate::audit`]).

use crate::audit::ConservationAuditor;
use crate::events::{Action, Schedule};
use crate::faults::{Fault, FaultPlan, RunError};
use crate::shard::StepMode;
use crate::world::{SimConfig, SimError, World};
use zendoo_mainchain::pipeline::VerifyMode;

/// Happy path: forward coins, pay on the SC, withdraw back, run the
/// requested number of certified epochs.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn happy_path(epochs: u32) -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 10_000))
        .at(3, Action::ScPay("alice".into(), "bob".into(), 2_500))
        .at(5, Action::ScWithdraw("bob".into(), 1_000));
    // Each epoch is epoch_len blocks; run enough ticks.
    let config = SimConfig::default();
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Liveness fault: the sidechain withholds certificates after the first
/// epoch; the mainchain must mark it ceased.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn withheld_certificates() -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let config = SimConfig::default();
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 5_000))
        .at(config.epoch_len as u64 + 2, Action::WithholdCertificates);
    let ticks = (config.epoch_len as u64 + 1) * 4;
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Fork tolerance: a mainchain reorg mid-epoch; the sidechain reverts
/// and re-syncs, and the following epochs certify normally.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn mc_fork_mid_epoch(depth: u64) -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let config = SimConfig::default();
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 5_000))
        .at(config.epoch_len as u64 + 3, Action::McFork(depth));
    let ticks = (config.epoch_len as u64 + 1) * 3;
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Three concurrent sidechains exchanging value through the mainchain:
/// alice funds `sc-0`, hops `sc-0 → sc-1 → sc-2`, then withdraws back
/// to the mainchain from `sc-2`. Exercises the full cross-chain
/// lifecycle (escrow, certificate declaration, maturity, delivery)
/// twice in sequence.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn cross_chain_triangle() -> Result<World, SimError> {
    let config = SimConfig::with_sidechains(3);
    let mut world = World::new(config.clone());
    let epoch = config.epoch_len as u64; // 6: epoch 0 spans heights 2..=7
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        // Declared in sc-0's epoch-0 certificate, delivered after its
        // window closes (escrow matures at the ceasing height).
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000))
        // The second hop waits until the first delivery landed on sc-1
        // (tick epoch + 3), then rides sc-1's next certificate.
        .at(
            2 * epoch,
            Action::CrossTransfer(1, 2, "alice".into(), 8_000),
        )
        .at(
            4 * epoch - 2,
            Action::ScWithdrawOn(2, "alice".into(), 3_000),
        );
    schedule.run(&mut world, 5 * epoch)?;
    Ok(world)
}

/// Refund path: a transfer whose destination sidechain ceases before
/// delivery. `sc-1` withholds its certificates from the start, so it is
/// ceased by the time alice's `sc-0 → sc-1` escrow matures; the router
/// refunds her mainchain payback address.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn cross_transfer_to_ceased() -> Result<World, SimError> {
    let config = SimConfig::with_sidechains(2);
    let mut world = World::new(config.clone());
    let epoch = config.epoch_len as u64;
    let schedule = Schedule::new()
        .at(0, Action::WithholdCertificatesOn(1))
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000));
    schedule.run(&mut world, 2 * epoch + 2)?;
    Ok(world)
}

/// The epoch length [`cross_chain_ring`] uses: long enough that every
/// chain can be funded (one forward transfer per tick — alice's
/// mainchain wallet chains each FT off the previous change output) and
/// still fire its ring transfer inside withdrawal epoch 0.
pub fn ring_epoch_len(chains: usize) -> u32 {
    (chains as u32 + 4).max(6)
}

/// The schedule of [`cross_chain_ring`]: chain `i` is funded at tick
/// `i`, and once every chain is funded each fires one transfer to its
/// ring successor simultaneously (all riding the chains' epoch-0
/// certificates).
pub fn ring_schedule(chains: usize) -> Schedule {
    let mut schedule = Schedule::new();
    for i in 0..chains {
        // 10k per chain: alice's 1M premine funds worlds up to 100
        // sidechains.
        schedule = schedule.at(
            i as u64,
            Action::ForwardTransferTo(i, "alice".into(), 10_000),
        );
        if chains > 1 {
            schedule = schedule.at(
                chains as u64 + 1,
                Action::CrossTransfer(i, (i + 1) % chains, "alice".into(), 2_000 + i as u64),
            );
        }
    }
    schedule
}

/// Scale scenario: `chains` sidechains advancing in lockstep, every
/// chain simultaneously sending one cross-chain transfer to its ring
/// successor — the workload of the sharded-simulation benchmark and
/// the determinism suite. `mode` selects the step implementation
/// (outcomes are identical in every mode).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn cross_chain_ring(chains: usize, epochs: u32, mode: StepMode) -> Result<World, SimError> {
    let config = SimConfig {
        step_mode: mode,
        epoch_len: ring_epoch_len(chains),
        ..SimConfig::with_sidechains(chains)
    };
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    let mut world = World::new(config);
    ring_schedule(chains).run(&mut world, ticks)?;
    Ok(world)
}

/// Stress scenario: sustained mixed workload over `epochs` epochs with
/// payments and withdrawals every block — used by throughput
/// measurements.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn sustained_load(epochs: u32, payments_per_block: u32) -> Result<World, SimError> {
    let config = SimConfig::default();
    let mut world = World::new(config.clone());
    let mut schedule = Schedule::new().at(0, Action::ForwardTransfer("alice".into(), 800_000));
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    for tick in 2..ticks {
        for i in 0..payments_per_block {
            schedule = schedule.at(
                tick,
                Action::ScPay("alice".into(), "bob".into(), 10 + i as u64),
            );
        }
    }
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

// ---- Composed Byzantine scenarios -------------------------------------
//
// Each takes the step and verify modes explicitly so the Byzantine
// suite can assert bit-identical outcomes across
// `StepMode::{Serial,Sharded}` × `VerifyMode::{Individual,Aggregated}`,
// and returns the world together with the auditor that watched every
// tick.

/// Composed fault 1 — *partition healing into a reorg storm with escrow
/// value in flight*: three chains; a cross-chain transfer escrows on
/// the mainchain while its destination `sc-1` is partitioned; the
/// partition heals (backlog replay certifies inside the submission
/// window), and then three consecutive shallow forks replay the blocks
/// carrying the matured escrow and its delivery. The transfer must
/// settle exactly once and every chain must stay live.
///
/// # Errors
///
/// [`RunError`] on step failures or any audited-invariant violation.
pub fn partition_reorg_storm(
    mode: StepMode,
    verify: VerifyMode,
) -> Result<(World, ConservationAuditor), RunError> {
    let config = SimConfig {
        step_mode: mode,
        verify_mode: verify,
        ..SimConfig::with_sidechains(3)
    };
    let mut world = World::new(config);
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        // Declared in sc-0's epoch-0 certificate while sc-1 is cut off.
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000));
    // The partition spans the escrow declaration and heals one tick
    // before the epoch boundary, so the backlog replay still certifies
    // inside the submission window. The forks then land on the empty
    // mid-epoch blocks around the escrow's maturity and delivery:
    // deep enough to rewind the settlement repeatedly, shallow enough
    // to keep every certificate-carrying block on the active chain (a
    // fork that disconnects one forces its re-pooled certificate
    // outside the submission window — faithful Def 4.2 ceasing, which
    // is the *withholding* scenario's job, not this one's). Each fork
    // lengthens the chain by one block, which shifts later epoch
    // boundaries one tick earlier — the tick arithmetic below accounts
    // for the two forks already injected when placing the third.
    let plan = FaultPlan::new(0)
        .at(3, Fault::Partition(1))
        .at(5, Fault::HealPartition(1))
        .at(9, Fault::Reorg(2))
        .at(10, Fault::Reorg(2))
        .at(13, Fault::Reorg(2));
    let mut auditor = ConservationAuditor::new();
    plan.run(&mut world, &schedule, 21, &mut auditor)?;
    Ok((world, auditor))
}

/// Composed fault 2 — *certifier quality wars at every epoch*: both
/// chains run under a standing quality war, so every honest certificate
/// is pooled surrounded by forged competitors claiming adjacent quality
/// (a higher-quality front-runner and a lower-quality trailer). The
/// SNARK binding of quality into the certificate statement must reject
/// every forgery — the honest certificate wins every epoch on both
/// chains, a cross-chain transfer still settles, and the auditor proves
/// no forged digest ever enters the registry.
///
/// # Errors
///
/// [`RunError`] on step failures or any audited-invariant violation.
pub fn certifier_quality_wars(
    mode: StepMode,
    verify: VerifyMode,
) -> Result<(World, ConservationAuditor), RunError> {
    let config = SimConfig {
        step_mode: mode,
        verify_mode: verify,
        ..SimConfig::with_sidechains(2)
    };
    let mut world = World::new(config);
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000));
    let plan = FaultPlan::new(0)
        .at(0, Fault::QualityWar(0))
        .at(0, Fault::QualityWar(1));
    let mut auditor = ConservationAuditor::new();
    plan.run(&mut world, &schedule, 28, &mut auditor)?;
    Ok((world, auditor))
}

/// The sender-side users of [`withholding_cascade`] (one per doomed
/// destination chain, so the six cross-chain transfers spend
/// independent UTXOs in a single tick).
pub const CASCADE_SENDERS: usize = 6;

/// Composed fault 3 — *withholding cascade with a mass-refund
/// settlement window under generated load*: eight chains; six withhold
/// their certificates from the start and all cease in the same
/// settlement window, while six escrowed transfers from `sc-0` are in
/// flight towards them — every one must refund (exactly once) to its
/// sender's mainchain payback address, inside a mainchain kept busy by
/// `users` generated load accounts (the Byzantine suite runs ≥10⁴)
/// batch-admitted every tick.
///
/// # Errors
///
/// [`RunError`] on step failures or any audited-invariant violation.
pub fn withholding_cascade(
    mode: StepMode,
    verify: VerifyMode,
    users: usize,
) -> Result<(World, ConservationAuditor), RunError> {
    use zendoo_loadgen::{LoadConfig, LoadGen, Population, Shape};

    let load = LoadConfig {
        users,
        seed: 11,
        ..LoadConfig::default()
    };
    let mut population = Population::generate(&load);
    let mut genesis_users = vec![("alice".to_string(), 1_000_000u64)];
    for i in 0..CASCADE_SENDERS {
        genesis_users.push((format!("sender-{i}"), 100_000));
    }
    let config = SimConfig {
        step_mode: mode,
        verify_mode: verify,
        genesis_users,
        extra_genesis_outputs: population.genesis_outputs(),
        ..SimConfig::with_sidechains(2 + CASCADE_SENDERS)
    };
    let mut world = World::new(config);
    population.bind_genesis(&world.chain, 1 + CASCADE_SENDERS as u32);
    let mut gen = LoadGen::new(population, Shape::Zipf { exponent: 1.0 }, &load);

    let mut schedule = Schedule::new();
    let mut plan = FaultPlan::new(0);
    for i in 0..CASCADE_SENDERS {
        let name = format!("sender-{i}");
        let doomed = 2 + i;
        // Fund each sender on sc-0, cut the destination's certifier
        // from the start, and fire the transfer early enough to ride
        // sc-0's epoch-0 certificate.
        schedule = schedule
            .at(0, Action::ForwardTransferTo(0, name.clone(), 10_000))
            .at(2, Action::CrossTransfer(0, doomed, name, 4_000));
        plan = plan.at(0, Fault::Withhold(doomed));
    }

    let mut auditor = ConservationAuditor::new();
    for tick in 0..16u64 {
        schedule.fire(&mut world, tick);
        plan.inject(&mut world, tick);
        let batch = gen.next_batch(200);
        world.admit_mc_batch(batch, 2);
        world.step().map_err(RunError::Sim)?;
        auditor.observe(&world)?;
        let tip = world.chain.tip_hash();
        gen.population_mut()
            .settle_block(world.chain.block(&tip).expect("tip exists"));
    }
    Ok((world, auditor))
}

/// Composed fault 4 — *relay equivocation*: a faulty relay feeds `sc-1`
/// a phantom mainchain block while a cross-chain transfer towards it is
/// in flight; the diverged shard buffers the canonical chain until the
/// relay is healed (rollback + backlog replay), after which the
/// transfer settles exactly once and both chains keep certifying —
/// equivocation degrades liveness, never safety.
///
/// # Errors
///
/// [`RunError`] on step failures or any audited-invariant violation.
pub fn relay_equivocation(
    mode: StepMode,
    verify: VerifyMode,
) -> Result<(World, ConservationAuditor), RunError> {
    let config = SimConfig {
        step_mode: mode,
        verify_mode: verify,
        ..SimConfig::with_sidechains(2)
    };
    let mut world = World::new(config);
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000));
    let plan = FaultPlan::new(0)
        .at(4, Fault::RelayEquivocate(1))
        .at(5, Fault::HealRelay(1));
    let mut auditor = ConservationAuditor::new();
    plan.run(&mut world, &schedule, 14, &mut auditor)?;
    Ok((world, auditor))
}

/// Composed fault 5 — *long-horizon mixed-fault soak*: three chains run
/// `epochs` (≥64 in the Byzantine suite) withdrawal epochs under a
/// standing quality war on `sc-1` while every epoch cycles through one
/// more fault — a partition of `sc-0` healed inside the epoch, a relay
/// equivocation against `sc-2` healed one block later, or a shallow
/// fork — and `sc-2` starts withholding halfway through, ceasing with a
/// refund owed to an in-flight transfer. Conservation, the safeguard,
/// exactly-once settlement and quality-war integrity are audited after
/// every one of the `epochs × epoch_len + 2` ticks.
///
/// Every mainchain fork lengthens the chain by one block, so epoch
/// boundaries drift one tick *earlier* per prior fork. A tick-indexed
/// [`FaultPlan`] would slowly slide its injections into the submission
/// windows and disconnect certificate inclusions; instead the soak
/// keys each injection off the **height the tick is about to mine** —
/// its position inside the current epoch — which is immune to drift.
///
/// # Errors
///
/// [`RunError`] on step failures or any audited-invariant violation.
pub fn long_horizon_soak(
    mode: StepMode,
    verify: VerifyMode,
    epochs: u64,
) -> Result<(World, ConservationAuditor), RunError> {
    let config = SimConfig {
        step_mode: mode,
        verify_mode: verify,
        ..SimConfig::with_sidechains(3)
    };
    let epoch = config.epoch_len as u64;
    let mut world = World::new(config);
    let cease_epoch = epochs / 2;
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 200_000))
        // Early cross traffic, delivered under the standing quality war.
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000));
    let plan = FaultPlan::new(0).at(0, Fault::QualityWar(1));
    // Fires one fault through the tolerant fault-plan dispatch path.
    fn fault(world: &mut World, f: Fault) {
        FaultPlan::new(0).at(0, f).inject(world, 0);
    }
    let mut auditor = ConservationAuditor::new();
    for tick in 0..epochs * epoch + 2 {
        schedule.fire(&mut world, tick);
        plan.inject(&mut world, tick);
        // Drift-immune cadence: `next` is the height this tick mines;
        // `(e, p)` its epoch and in-epoch position. Positions 0..=1 are
        // the previous epoch's submission window (certificates land at
        // p == 0), so all faults target the quiet middle of the epoch.
        let next = world.chain.height() + 1;
        if next >= 2 {
            let (e, p) = ((next - 2) / epoch, (next - 2) % epoch);
            // A quiet epoch every fourth (e % 4 == 0) keeps a
            // fault-free baseline in the soak.
            match (e % 4, p) {
                (1, 2) => fault(&mut world, Fault::Partition(0)),
                (1, 4) => fault(&mut world, Fault::HealPartition(0)),
                (2, 2) if e < cease_epoch => fault(&mut world, Fault::RelayEquivocate(2)),
                (2, 3) if e < cease_epoch => fault(&mut world, Fault::HealRelay(2)),
                (3, 4) => fault(&mut world, Fault::Reorg(1)),
                _ => {}
            }
            if e == cease_epoch {
                if p == 1 {
                    // Queued just before sc-2 stops certifying: its
                    // escrow matures against a ceased destination and
                    // must refund exactly once.
                    let from = world.sidechain_id_at(0);
                    let to = world.sidechain_id_at(2);
                    if let (Ok(from), Ok(to)) = (from, to) {
                        if world
                            .queue_cross_transfer(&from, &to, "alice", 5_000)
                            .is_err()
                        {
                            world.metrics.rejections += 1;
                        }
                    }
                } else if p == 2 {
                    fault(&mut world, Fault::Withhold(2));
                }
            }
        }
        world.step().map_err(RunError::Sim)?;
        auditor.observe(&world)?;
    }
    Ok((world, auditor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_mainchain::SidechainStatus;

    #[test]
    fn happy_path_certifies_epochs_and_conserves() {
        let world = happy_path(2).unwrap();
        assert!(world.metrics.certificates_accepted >= 2);
        assert_eq!(world.metrics.certificates_rejected, 0);
        assert!(world.conservation_holds());
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Active));
        // The withdrawal eventually paid out on the MC.
        let bob = world.user("bob").unwrap();
        assert!(!world
            .chain
            .state()
            .utxos
            .balance_of(&bob.mc_address())
            .is_zero(),);
    }

    #[test]
    fn withheld_certificates_cease_the_sidechain() {
        let world = withheld_certificates().unwrap();
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Ceased));
        assert!(world.metrics.certificates_withheld > 0);
        assert!(world.conservation_holds());
    }

    #[test]
    fn cross_chain_triangle_moves_value_and_conserves() {
        let world = cross_chain_triangle().unwrap();
        assert_eq!(world.metrics.cross_transfers_initiated, 2);
        assert_eq!(world.metrics.cross_transfers_delivered, 2);
        assert_eq!(world.metrics.cross_transfers_rejected, 0);
        assert!(world.conservation_holds());
        assert!(world.safeguards_hold());

        let ids = world.sidechain_ids().to_vec();
        let alice = world.user("alice").unwrap().clone();
        // sc-0 kept the change of the first hop.
        assert_eq!(
            world
                .node_of(&ids[0])
                .unwrap()
                .balance_of(&alice.sc_address_on(&ids[0])),
            zendoo_core::ids::Amount::from_units(30_000)
        );
        // sc-1 kept what was not forwarded to sc-2.
        assert_eq!(
            world
                .node_of(&ids[1])
                .unwrap()
                .balance_of(&alice.sc_address_on(&ids[1])),
            zendoo_core::ids::Amount::from_units(12_000)
        );
        // sc-2 received the second hop; the withdrawal spends the whole
        // 8k UTXO (whole-UTXO withdrawal refunds change to the MC side),
        // so everything returned to alice's mainchain address.
        assert_eq!(
            world
                .node_of(&ids[2])
                .unwrap()
                .balance_of(&alice.sc_address_on(&ids[2])),
            zendoo_core::ids::Amount::ZERO
        );
        assert_eq!(
            world.chain.state().utxos.balance_of(&alice.mc_address()),
            zendoo_core::ids::Amount::from_units(1_000_000 - 50_000 + 8_000)
        );
        // The destination nodes logged the inbound transfers.
        assert_eq!(
            world
                .node_of(&ids[1])
                .unwrap()
                .inbound_cross_transfers()
                .len(),
            1
        );
        assert_eq!(
            world
                .node_of(&ids[2])
                .unwrap()
                .inbound_cross_transfers()
                .len(),
            1
        );
    }

    #[test]
    fn ceased_destination_refunds_sender() {
        let world = cross_transfer_to_ceased().unwrap();
        let ids = world.sidechain_ids().to_vec();
        assert_eq!(
            world.sidechain_status_of(&ids[1]),
            Some(SidechainStatus::Ceased)
        );
        assert_eq!(world.metrics.cross_transfers_initiated, 1);
        assert_eq!(world.metrics.cross_transfers_delivered, 0);
        assert_eq!(world.metrics.cross_transfers_refunded, 1);
        assert!(world.conservation_holds());
        // The refund paid alice's mainchain address: genesis premine
        // minus the 50k forward transfer plus the 20k refund.
        let alice = world.user("alice").unwrap().clone();
        assert_eq!(
            world.chain.state().utxos.balance_of(&alice.mc_address()),
            zendoo_core::ids::Amount::from_units(1_000_000 - 50_000 + 20_000)
        );
    }

    #[test]
    fn mc_fork_recovers_and_still_certifies() {
        let world = mc_fork_mid_epoch(2).unwrap();
        assert_eq!(world.metrics.reorgs, 1);
        assert!(world.metrics.sc_blocks_reverted >= 1);
        assert!(world.metrics.certificates_accepted >= 1);
        assert!(world.conservation_holds());
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Active));
    }
}
