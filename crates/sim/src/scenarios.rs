//! Canned scenarios used by tests, examples and benchmarks.
//!
//! `docs/SCENARIOS.md` maps each scenario (and each `examples/*.rs`
//! program) to the paper section it reproduces.

use crate::events::{Action, Schedule};
use crate::shard::StepMode;
use crate::world::{SimConfig, SimError, World};

/// Happy path: forward coins, pay on the SC, withdraw back, run the
/// requested number of certified epochs.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn happy_path(epochs: u32) -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 10_000))
        .at(3, Action::ScPay("alice".into(), "bob".into(), 2_500))
        .at(5, Action::ScWithdraw("bob".into(), 1_000));
    // Each epoch is epoch_len blocks; run enough ticks.
    let config = SimConfig::default();
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Liveness fault: the sidechain withholds certificates after the first
/// epoch; the mainchain must mark it ceased.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn withheld_certificates() -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let config = SimConfig::default();
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 5_000))
        .at(config.epoch_len as u64 + 2, Action::WithholdCertificates);
    let ticks = (config.epoch_len as u64 + 1) * 4;
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Fork tolerance: a mainchain reorg mid-epoch; the sidechain reverts
/// and re-syncs, and the following epochs certify normally.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn mc_fork_mid_epoch(depth: u64) -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let config = SimConfig::default();
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 5_000))
        .at(config.epoch_len as u64 + 3, Action::McFork(depth));
    let ticks = (config.epoch_len as u64 + 1) * 3;
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Three concurrent sidechains exchanging value through the mainchain:
/// alice funds `sc-0`, hops `sc-0 → sc-1 → sc-2`, then withdraws back
/// to the mainchain from `sc-2`. Exercises the full cross-chain
/// lifecycle (escrow, certificate declaration, maturity, delivery)
/// twice in sequence.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn cross_chain_triangle() -> Result<World, SimError> {
    let config = SimConfig::with_sidechains(3);
    let mut world = World::new(config.clone());
    let epoch = config.epoch_len as u64; // 6: epoch 0 spans heights 2..=7
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        // Declared in sc-0's epoch-0 certificate, delivered after its
        // window closes (escrow matures at the ceasing height).
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000))
        // The second hop waits until the first delivery landed on sc-1
        // (tick epoch + 3), then rides sc-1's next certificate.
        .at(
            2 * epoch,
            Action::CrossTransfer(1, 2, "alice".into(), 8_000),
        )
        .at(
            4 * epoch - 2,
            Action::ScWithdrawOn(2, "alice".into(), 3_000),
        );
    schedule.run(&mut world, 5 * epoch)?;
    Ok(world)
}

/// Refund path: a transfer whose destination sidechain ceases before
/// delivery. `sc-1` withholds its certificates from the start, so it is
/// ceased by the time alice's `sc-0 → sc-1` escrow matures; the router
/// refunds her mainchain payback address.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn cross_transfer_to_ceased() -> Result<World, SimError> {
    let config = SimConfig::with_sidechains(2);
    let mut world = World::new(config.clone());
    let epoch = config.epoch_len as u64;
    let schedule = Schedule::new()
        .at(0, Action::WithholdCertificatesOn(1))
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 20_000));
    schedule.run(&mut world, 2 * epoch + 2)?;
    Ok(world)
}

/// The epoch length [`cross_chain_ring`] uses: long enough that every
/// chain can be funded (one forward transfer per tick — alice's
/// mainchain wallet chains each FT off the previous change output) and
/// still fire its ring transfer inside withdrawal epoch 0.
pub fn ring_epoch_len(chains: usize) -> u32 {
    (chains as u32 + 4).max(6)
}

/// The schedule of [`cross_chain_ring`]: chain `i` is funded at tick
/// `i`, and once every chain is funded each fires one transfer to its
/// ring successor simultaneously (all riding the chains' epoch-0
/// certificates).
pub fn ring_schedule(chains: usize) -> Schedule {
    let mut schedule = Schedule::new();
    for i in 0..chains {
        // 10k per chain: alice's 1M premine funds worlds up to 100
        // sidechains.
        schedule = schedule.at(
            i as u64,
            Action::ForwardTransferTo(i, "alice".into(), 10_000),
        );
        if chains > 1 {
            schedule = schedule.at(
                chains as u64 + 1,
                Action::CrossTransfer(i, (i + 1) % chains, "alice".into(), 2_000 + i as u64),
            );
        }
    }
    schedule
}

/// Scale scenario: `chains` sidechains advancing in lockstep, every
/// chain simultaneously sending one cross-chain transfer to its ring
/// successor — the workload of the sharded-simulation benchmark and
/// the determinism suite. `mode` selects the step implementation
/// (outcomes are identical in every mode).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn cross_chain_ring(chains: usize, epochs: u32, mode: StepMode) -> Result<World, SimError> {
    let config = SimConfig {
        step_mode: mode,
        epoch_len: ring_epoch_len(chains),
        ..SimConfig::with_sidechains(chains)
    };
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    let mut world = World::new(config);
    ring_schedule(chains).run(&mut world, ticks)?;
    Ok(world)
}

/// Stress scenario: sustained mixed workload over `epochs` epochs with
/// payments and withdrawals every block — used by throughput
/// measurements.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn sustained_load(epochs: u32, payments_per_block: u32) -> Result<World, SimError> {
    let config = SimConfig::default();
    let mut world = World::new(config.clone());
    let mut schedule = Schedule::new().at(0, Action::ForwardTransfer("alice".into(), 800_000));
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    for tick in 2..ticks {
        for i in 0..payments_per_block {
            schedule = schedule.at(
                tick,
                Action::ScPay("alice".into(), "bob".into(), 10 + i as u64),
            );
        }
    }
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_mainchain::SidechainStatus;

    #[test]
    fn happy_path_certifies_epochs_and_conserves() {
        let world = happy_path(2).unwrap();
        assert!(world.metrics.certificates_accepted >= 2);
        assert_eq!(world.metrics.certificates_rejected, 0);
        assert!(world.conservation_holds());
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Active));
        // The withdrawal eventually paid out on the MC.
        let bob = world.user("bob").unwrap();
        assert!(!world
            .chain
            .state()
            .utxos
            .balance_of(&bob.mc_address())
            .is_zero(),);
    }

    #[test]
    fn withheld_certificates_cease_the_sidechain() {
        let world = withheld_certificates().unwrap();
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Ceased));
        assert!(world.metrics.certificates_withheld > 0);
        assert!(world.conservation_holds());
    }

    #[test]
    fn cross_chain_triangle_moves_value_and_conserves() {
        let world = cross_chain_triangle().unwrap();
        assert_eq!(world.metrics.cross_transfers_initiated, 2);
        assert_eq!(world.metrics.cross_transfers_delivered, 2);
        assert_eq!(world.metrics.cross_transfers_rejected, 0);
        assert!(world.conservation_holds());
        assert!(world.safeguards_hold());

        let ids = world.sidechain_ids().to_vec();
        let alice = world.user("alice").unwrap().clone();
        // sc-0 kept the change of the first hop.
        assert_eq!(
            world
                .node_of(&ids[0])
                .unwrap()
                .balance_of(&alice.sc_address_on(&ids[0])),
            zendoo_core::ids::Amount::from_units(30_000)
        );
        // sc-1 kept what was not forwarded to sc-2.
        assert_eq!(
            world
                .node_of(&ids[1])
                .unwrap()
                .balance_of(&alice.sc_address_on(&ids[1])),
            zendoo_core::ids::Amount::from_units(12_000)
        );
        // sc-2 received the second hop; the withdrawal spends the whole
        // 8k UTXO (whole-UTXO withdrawal refunds change to the MC side),
        // so everything returned to alice's mainchain address.
        assert_eq!(
            world
                .node_of(&ids[2])
                .unwrap()
                .balance_of(&alice.sc_address_on(&ids[2])),
            zendoo_core::ids::Amount::ZERO
        );
        assert_eq!(
            world.chain.state().utxos.balance_of(&alice.mc_address()),
            zendoo_core::ids::Amount::from_units(1_000_000 - 50_000 + 8_000)
        );
        // The destination nodes logged the inbound transfers.
        assert_eq!(
            world
                .node_of(&ids[1])
                .unwrap()
                .inbound_cross_transfers()
                .len(),
            1
        );
        assert_eq!(
            world
                .node_of(&ids[2])
                .unwrap()
                .inbound_cross_transfers()
                .len(),
            1
        );
    }

    #[test]
    fn ceased_destination_refunds_sender() {
        let world = cross_transfer_to_ceased().unwrap();
        let ids = world.sidechain_ids().to_vec();
        assert_eq!(
            world.sidechain_status_of(&ids[1]),
            Some(SidechainStatus::Ceased)
        );
        assert_eq!(world.metrics.cross_transfers_initiated, 1);
        assert_eq!(world.metrics.cross_transfers_delivered, 0);
        assert_eq!(world.metrics.cross_transfers_refunded, 1);
        assert!(world.conservation_holds());
        // The refund paid alice's mainchain address: genesis premine
        // minus the 50k forward transfer plus the 20k refund.
        let alice = world.user("alice").unwrap().clone();
        assert_eq!(
            world.chain.state().utxos.balance_of(&alice.mc_address()),
            zendoo_core::ids::Amount::from_units(1_000_000 - 50_000 + 20_000)
        );
    }

    #[test]
    fn mc_fork_recovers_and_still_certifies() {
        let world = mc_fork_mid_epoch(2).unwrap();
        assert_eq!(world.metrics.reorgs, 1);
        assert!(world.metrics.sc_blocks_reverted >= 1);
        assert!(world.metrics.certificates_accepted >= 1);
        assert!(world.conservation_holds());
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Active));
    }
}
