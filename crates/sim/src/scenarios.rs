//! Canned scenarios used by tests, examples and benchmarks.

use crate::events::{Action, Schedule};
use crate::world::{SimConfig, SimError, World};

/// Happy path: forward coins, pay on the SC, withdraw back, run the
/// requested number of certified epochs.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn happy_path(epochs: u32) -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 10_000))
        .at(3, Action::ScPay("alice".into(), "bob".into(), 2_500))
        .at(5, Action::ScWithdraw("bob".into(), 1_000));
    // Each epoch is epoch_len blocks; run enough ticks.
    let config = SimConfig::default();
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Liveness fault: the sidechain withholds certificates after the first
/// epoch; the mainchain must mark it ceased.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn withheld_certificates() -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let config = SimConfig::default();
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 5_000))
        .at(config.epoch_len as u64 + 2, Action::WithholdCertificates);
    let ticks = (config.epoch_len as u64 + 1) * 4;
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

/// Fork tolerance: a mainchain reorg mid-epoch; the sidechain reverts
/// and re-syncs, and the following epochs certify normally.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn mc_fork_mid_epoch(depth: u64) -> Result<World, SimError> {
    let mut world = World::new(SimConfig::default());
    let config = SimConfig::default();
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransfer("alice".into(), 5_000))
        .at(config.epoch_len as u64 + 3, Action::McFork(depth));
    let ticks = (config.epoch_len as u64 + 1) * 3;
    schedule.run(&mut world, ticks)?;
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_mainchain::SidechainStatus;

    #[test]
    fn happy_path_certifies_epochs_and_conserves() {
        let world = happy_path(2).unwrap();
        assert!(world.metrics.certificates_accepted >= 2);
        assert_eq!(world.metrics.certificates_rejected, 0);
        assert!(world.conservation_holds());
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Active));
        // The withdrawal eventually paid out on the MC.
        let bob = world.user("bob").unwrap();
        assert!(
            !world
                .chain
                .state()
                .utxos
                .balance_of(&bob.mc_address())
                .is_zero(),
        );
    }

    #[test]
    fn withheld_certificates_cease_the_sidechain() {
        let world = withheld_certificates().unwrap();
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Ceased));
        assert!(world.metrics.certificates_withheld > 0);
        assert!(world.conservation_holds());
    }

    #[test]
    fn mc_fork_recovers_and_still_certifies() {
        let world = mc_fork_mid_epoch(2).unwrap();
        assert_eq!(world.metrics.reorgs, 1);
        assert!(world.metrics.sc_blocks_reverted >= 1);
        assert!(world.metrics.certificates_accepted >= 1);
        assert!(world.conservation_holds());
        assert_eq!(world.sidechain_status(), Some(SidechainStatus::Active));
    }
}

/// Stress scenario: sustained mixed workload over `epochs` epochs with
/// payments and withdrawals every block — used by throughput
/// measurements.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn sustained_load(epochs: u32, payments_per_block: u32) -> Result<World, SimError> {
    let config = SimConfig::default();
    let mut world = World::new(config.clone());
    let mut schedule = Schedule::new().at(0, Action::ForwardTransfer("alice".into(), 800_000));
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    for tick in 2..ticks {
        for i in 0..payments_per_block {
            schedule = schedule.at(
                tick,
                Action::ScPay("alice".into(), "bob".into(), 10 + i as u64),
            );
        }
    }
    schedule.run(&mut world, ticks)?;
    Ok(world)
}
