//! Composable Byzantine fault plans.
//!
//! A [`FaultPlan`] is a deterministic, tick-indexed script of
//! [`Fault`]s — partitions, relay equivocations, certificate
//! withholding, quality wars, fork storms and shard crashes — layered
//! on top of a transaction [`crate::Schedule`]. [`FaultPlan::run`]
//! drives a [`crate::world::World`] one block per tick, firing the
//! schedule's transactions and the plan's faults before each block and
//! auditing every value pool after it (see
//! [`crate::audit::ConservationAuditor`]).
//!
//! Plans are data, so the same plan replays bit-identically under
//! every [`crate::StepMode`] and [`zendoo_mainchain::VerifyMode`] —
//! and [`FaultPlan::random`] derives arbitrarily composed plans from a
//! single seed, which the property tests print on failure for exact
//! reproduction.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::audit::{AuditViolation, ConservationAuditor};
use crate::events::Schedule;
use crate::world::{SimError, World};

/// One injectable fault. Indexed variants name a sidechain by its
/// position in [`crate::world::SimConfig::sidechain_labels`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Cut sidechain `sc_index` off from the mainchain (blocks buffer).
    Partition(usize),
    /// Reconnect a partitioned sidechain (backlog replays next sync).
    HealPartition(usize),
    /// Produce but never submit certificates on one sidechain.
    Withhold(usize),
    /// Resume certificate submission on one sidechain.
    Resume(usize),
    /// Inject a mainchain fork of the given depth (a reorg).
    Reorg(u64),
    /// Surround each honest certificate of one sidechain with forged
    /// competitors claiming adjacent quality.
    QualityWar(usize),
    /// End the quality war on one sidechain.
    EndQualityWar(usize),
    /// Feed one sidechain a phantom mainchain block via a faulty relay.
    RelayEquivocate(usize),
    /// Roll a relay-diverged sidechain back onto the canonical chain.
    HealRelay(usize),
    /// Crash one sidechain's shard at its next sync (quarantined;
    /// the chain then ceases like any liveness fault).
    ShardPanic(usize),
    /// Queue a forward transfer with corrupted (malformed) receiver
    /// metadata into sidechain `sc_index`, funded by the default
    /// genesis user `alice`. The destination must refund the amount via
    /// the consensus-checked backward-transfer path — stranding it in
    /// the registry balance is the conservation bug
    /// [`crate::audit::ConservationAuditor::check_reconciled`] catches.
    MalformedFt(usize),
}

/// A composed-fault run failure: either the world itself broke (a step
/// error) or — the interesting case — the auditor caught an invariant
/// violation.
#[derive(Debug)]
pub enum RunError {
    /// A world step failed.
    Sim(SimError),
    /// The conservation auditor found a violated invariant.
    Audit(AuditViolation),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation: {e}"),
            RunError::Audit(v) => write!(f, "audit: {v}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<AuditViolation> for RunError {
    fn from(v: AuditViolation) -> Self {
        RunError::Audit(v)
    }
}

/// A deterministic tick-indexed script of [`Fault`]s.
///
/// # Examples
///
/// ```
/// use zendoo_sim::{Fault, FaultPlan};
///
/// let plan = FaultPlan::new(7)
///     .at(3, Fault::Partition(0))
///     .at(5, Fault::HealPartition(0));
/// assert_eq!(plan.fault_count(), 2);
/// assert_eq!(plan.seed(), 7);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<u64, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan carrying a seed label (printed by property tests
    /// for reproduction; hand-written plans can pass anything).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: BTreeMap::new(),
        }
    }

    /// The seed this plan was derived from (or labelled with).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a fault at `tick` (0-based; fires before the `tick`-th
    /// mined block, after the schedule's transactions).
    pub fn at(mut self, tick: u64, fault: Fault) -> Self {
        self.faults.entry(tick).or_default().push(fault);
        self
    }

    /// The faults scheduled for `tick`, in insertion order.
    pub fn faults_at(&self, tick: u64) -> &[Fault] {
        self.faults.get(&tick).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled faults.
    pub fn fault_count(&self) -> usize {
        self.faults.values().map(Vec::len).sum()
    }

    /// Returns `true` when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derives a random composed plan from `seed`: two to four fault
    /// episodes spread over `ticks`, each a paired inject/heal window
    /// (partition, withhold, quality war, relay equivocation), a
    /// shallow fork (depth 1–3), or a malformed-metadata forward
    /// transfer (a one-shot deposit that must be refunded, never
    /// stranded). Same seed, same plan — property-test failures
    /// reproduce from the printed seed alone.
    pub fn random(seed: u64, chains: usize, ticks: u64) -> Self {
        assert!(chains > 0, "at least one chain");
        assert!(ticks >= 8, "need at least 8 ticks for an episode");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(seed);
        let episodes = 2 + rng.gen_range(0, 3);
        for _ in 0..episodes {
            let sc = rng.gen_range(0, chains as u64) as usize;
            let start = rng.gen_range(1, ticks - 4);
            let span = 1 + rng.gen_range(0, 3);
            let heal = (start + span).min(ticks - 1);
            match rng.gen_range(0, 6) {
                0 => {
                    plan = plan
                        .at(start, Fault::Partition(sc))
                        .at(heal, Fault::HealPartition(sc));
                }
                1 => {
                    plan = plan
                        .at(start, Fault::Withhold(sc))
                        .at(heal, Fault::Resume(sc));
                }
                2 => {
                    plan = plan
                        .at(start, Fault::QualityWar(sc))
                        .at(heal, Fault::EndQualityWar(sc));
                }
                3 => {
                    plan = plan
                        .at(start, Fault::RelayEquivocate(sc))
                        .at(heal, Fault::HealRelay(sc));
                }
                4 => {
                    let depth = 1 + rng.gen_range(0, 3);
                    plan = plan.at(start, Fault::Reorg(depth));
                }
                _ => {
                    plan = plan.at(start, Fault::MalformedFt(sc));
                }
            }
        }
        plan
    }

    /// Fires this plan's faults for one tick. Injection failures are
    /// tolerated and counted in `world.metrics.rejections` — random
    /// plans legitimately compose conflicting faults (e.g. partitioning
    /// an already-diverged shard), and the world refusing one is
    /// correct behaviour, not a run failure.
    pub fn inject(&self, world: &mut World, tick: u64) {
        for fault in self.faults_at(tick) {
            let result = match fault {
                Fault::Partition(index) => world
                    .sidechain_id_at(*index)
                    .and_then(|sc| world.inject_partition(&sc)),
                Fault::HealPartition(index) => world.sidechain_id_at(*index).map(|sc| {
                    world.heal_partition(&sc);
                }),
                Fault::Withhold(index) => world.sidechain_id_at(*index).map(|sc| {
                    world.withhold_certificates_for(&sc);
                }),
                Fault::Resume(index) => world.sidechain_id_at(*index).map(|sc| {
                    world.resume_certificates_for(&sc);
                }),
                Fault::Reorg(depth) => world.inject_mc_fork(*depth).map(|_| ()),
                Fault::QualityWar(index) => world.sidechain_id_at(*index).map(|sc| {
                    world.start_quality_war(&sc);
                }),
                Fault::EndQualityWar(index) => world.sidechain_id_at(*index).map(|sc| {
                    world.end_quality_war(&sc);
                }),
                Fault::RelayEquivocate(index) => world
                    .sidechain_id_at(*index)
                    .and_then(|sc| world.inject_relay_equivocation(&sc).map(|_| ())),
                Fault::HealRelay(index) => world
                    .sidechain_id_at(*index)
                    .and_then(|sc| world.heal_relay(&sc).map(|_| ())),
                Fault::ShardPanic(index) => world.sidechain_id_at(*index).map(|sc| {
                    world.inject_shard_panic(&sc);
                }),
                Fault::MalformedFt(index) => world
                    .sidechain_id_at(*index)
                    .and_then(|sc| world.queue_malformed_forward_transfer_on(&sc, "alice", 1_000)),
            };
            if result.is_err() {
                world.metrics.rejections += 1;
            }
        }
    }

    /// Runs `ticks` steps of `world`: each tick fires the schedule's
    /// transactions, then this plan's faults, steps one block, and has
    /// `auditor` check every invariant.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] when a step fails; [`RunError::Audit`] the
    /// moment an invariant breaks.
    pub fn run(
        &self,
        world: &mut World,
        schedule: &Schedule,
        ticks: u64,
        auditor: &mut ConservationAuditor,
    ) -> Result<(), RunError> {
        for tick in 0..ticks {
            schedule.fire(world, tick);
            self.inject(world, tick);
            world.step()?;
            auditor.observe(world)?;
        }
        Ok(())
    }
}
