//! Conservation auditing for composed Byzantine scenarios.
//!
//! A [`ConservationAuditor`] snapshots every value pool in the system —
//! mainchain UTXOs (escrowed value broken out), registry-locked
//! sidechain balances, router-pending transfers and the sidechains' own
//! ledgers — once per tick, and asserts the end-to-end invariants the
//! paper's construction promises under *any* fault mix:
//!
//! 1. **Conservation** — spendable UTXO value plus registry-locked value
//!    equals net minted coins, every tick (escrowed in-flight value is
//!    itself a UTXO, so it is covered).
//! 2. **Safeguard** — no sidechain's on-ledger value exceeds the balance
//!    the mainchain holds for it (paper §3: a sidechain cannot withdraw
//!    more than was transferred to it).
//! 3. **Exactly-once settlement** — per transfer nullifier, at most one
//!    `Delivered` and at most one `Refunded` receipt, never both: a
//!    refund is final and a delivery is final, across partitions, forks
//!    and replays.
//! 4. **Quality-war integrity** — no forged competing certificate (see
//!    [`crate::world::World::start_quality_war`]) is ever accepted into
//!    the registry.
//!
//! Snapshots are pure functions of world state, so two worlds that are
//! bit-identical (e.g. Serial vs Sharded stepping) produce equal
//! snapshot streams — the Byzantine determinism tests compare them
//! directly.

use std::collections::BTreeMap;

use zendoo_core::crosschain::DeliveryStatus;
use zendoo_core::ids::{Amount, Nullifier};
use zendoo_primitives::digest::Digest32;

use crate::world::World;

/// One per-tick snapshot of every value pool in the system. Pure state
/// — comparable across step/verify modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditSnapshot {
    /// Observation index (0-based count of `observe` calls).
    pub tick: u64,
    /// Mainchain height at observation time.
    pub mc_height: u64,
    /// Net minted coins (subsidies minus burns).
    pub minted: Amount,
    /// Total value of the mainchain UTXO set.
    pub utxo_value: Amount,
    /// The escrow-kind subset of `utxo_value` (cross-chain value in
    /// flight between certificate maturation and settlement).
    pub escrow_value: Amount,
    /// Sidechain balances locked in the registry.
    pub locked_value: Amount,
    /// Value of transfers queued in the router's maturity windows.
    pub router_pending_value: Amount,
    /// Sum of all non-quarantined sidechain ledgers.
    pub sidechain_value: Amount,
}

/// An invariant the auditor found violated (the audit's hard failure —
/// scenarios propagate it as a test failure, property tests shrink on
/// it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// UTXO value plus locked value drifted from net minted coins.
    Conservation {
        /// Observation index of the failing tick.
        tick: u64,
        /// Total UTXO value at that tick.
        utxo_value: Amount,
        /// Registry-locked value at that tick.
        locked_value: Amount,
        /// Net minted coins at that tick.
        minted: Amount,
    },
    /// A sidechain's on-ledger value exceeds its mainchain balance.
    Safeguard {
        /// The offending sidechain (display form).
        chain: String,
        /// Value on the sidechain's own ledger.
        on_chain: Amount,
        /// Balance the mainchain holds for it.
        locked: Amount,
    },
    /// A transfer nullifier settled more than once (two deliveries, two
    /// refunds, or one of each).
    DoubleSettlement {
        /// The nullifier with conflicting terminal receipts.
        nullifier: Nullifier,
        /// `Delivered` receipts observed for it.
        delivered: u32,
        /// `Refunded` receipts observed for it.
        refunded: u32,
    },
    /// At quiescence, a sidechain's registry balance exceeds its
    /// on-ledger value: mainchain-side value with no sidechain claimant
    /// (the malformed-FT stranding bug).
    Stranded {
        /// The offending sidechain (display form).
        chain: String,
        /// Balance the mainchain holds for it.
        locked: Amount,
        /// Value on the sidechain's own ledger.
        on_chain: Amount,
    },
    /// A forged quality-war certificate was accepted into the registry.
    ForgedWinner {
        /// The sidechain whose epoch was won by a forgery.
        chain: String,
        /// The epoch in question.
        epoch: u32,
        /// Digest of the accepted forged certificate.
        digest: Digest32,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::Conservation {
                tick,
                utxo_value,
                locked_value,
                minted,
            } => write!(
                f,
                "conservation violated at tick {tick}: utxo {utxo_value} + locked \
                 {locked_value} != minted {minted}"
            ),
            AuditViolation::Safeguard {
                chain,
                on_chain,
                locked,
            } => write!(
                f,
                "safeguard violated on {chain}: on-chain value {on_chain} exceeds \
                 locked balance {locked}"
            ),
            AuditViolation::DoubleSettlement {
                nullifier,
                delivered,
                refunded,
            } => write!(
                f,
                "nullifier {:?} settled more than once (delivered {delivered}, \
                 refunded {refunded})",
                nullifier
            ),
            AuditViolation::Stranded {
                chain,
                locked,
                on_chain,
            } => write!(
                f,
                "stranded value on {chain}: locked balance {locked} exceeds on-chain \
                 value {on_chain} at quiescence"
            ),
            AuditViolation::ForgedWinner {
                chain,
                epoch,
                digest,
            } => write!(
                f,
                "forged certificate {digest:?} accepted for {chain} epoch {epoch}"
            ),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Snapshots world value pools every tick and asserts the conservation,
/// safeguard, exactly-once-settlement and quality-war invariants (see
/// the module docs).
///
/// # Examples
///
/// ```
/// use zendoo_sim::{ConservationAuditor, SimConfig, World};
///
/// let mut world = World::new(SimConfig::default());
/// let mut auditor = ConservationAuditor::new();
/// for _ in 0..4 {
///     world.step().unwrap();
///     auditor.observe(&world).unwrap();
/// }
/// assert_eq!(auditor.snapshots().len(), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConservationAuditor {
    snapshots: Vec<AuditSnapshot>,
    checks: u64,
}

impl ConservationAuditor {
    /// A fresh auditor with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots `world` and checks every invariant, returning the
    /// recorded snapshot. Emits `sim.audit.*` telemetry (a
    /// `sim.audit.scan` span plus `sim.audit.ticks` /
    /// `sim.audit.violations` counters) when the world records.
    ///
    /// # Errors
    ///
    /// The first [`AuditViolation`] found, if any (the snapshot is still
    /// recorded, so a failing history remains inspectable).
    pub fn observe(&mut self, world: &World) -> Result<&AuditSnapshot, AuditViolation> {
        let started = std::time::Instant::now();
        let snapshot = self.snapshot(world);
        self.snapshots.push(snapshot);
        let result = self.check(world);
        world.telemetry().counter("sim.audit.ticks", 1);
        if result.is_err() {
            world.telemetry().counter("sim.audit.violations", 1);
        }
        world
            .telemetry()
            .span_nanos("sim.audit.scan", started.elapsed().as_nanos() as u64);
        result?;
        Ok(self.snapshots.last().expect("just pushed"))
    }

    /// Every snapshot recorded so far, in observation order.
    pub fn snapshots(&self) -> &[AuditSnapshot] {
        &self.snapshots
    }

    /// The most recent snapshot, if any.
    pub fn last(&self) -> Option<&AuditSnapshot> {
        self.snapshots.last()
    }

    /// Total invariant checks performed across all observations.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Quiescence reconciliation: once the system has drained (run a
    /// few fault-free epochs so settlement windows close, certificates
    /// mature and healed shards replay their backlog), every healthy
    /// *active* sidechain's registry balance must exactly equal its
    /// on-ledger value. Any excess is value stranded on the mainchain
    /// side with no sidechain claimant — exactly what the historic
    /// malformed-FT bug produced, which the per-tick safeguard
    /// (`on_chain <= locked`) can never see. Ceased chains are skipped
    /// (their balance legitimately awaits ceased-sidechain
    /// withdrawals), as are quarantined and still-stalled shards (no
    /// guarantee the node state is caught up).
    ///
    /// # Errors
    ///
    /// [`AuditViolation::Stranded`] naming the first chain whose locked
    /// balance and ledger disagree in either direction.
    pub fn check_reconciled(&mut self, world: &World) -> Result<(), AuditViolation> {
        let state = world.chain.state();
        for id in world.sidechain_ids() {
            let Some(shard) = world.shard(id) else {
                continue;
            };
            if shard.quarantined || shard.partitioned.is_some() || shard.diverged.is_some() {
                continue;
            }
            let Some(entry) = state.registry.get(id) else {
                continue;
            };
            if entry.status != zendoo_mainchain::SidechainStatus::Active {
                continue;
            }
            self.checks += 1;
            let on_chain = shard.instance.node.state().total_value();
            if entry.balance != on_chain {
                return Err(AuditViolation::Stranded {
                    chain: id.to_string(),
                    locked: entry.balance,
                    on_chain,
                });
            }
        }
        Ok(())
    }

    fn snapshot(&self, world: &World) -> AuditSnapshot {
        let state = world.chain.state();
        let escrow_value = Amount::checked_sum(
            state
                .utxos
                .iter()
                .filter(|(_, out)| out.is_escrow())
                .map(|(_, out)| out.amount),
        )
        .expect("escrowed value fits in u64");
        let sidechain_value = world
            .sidechain_ids()
            .iter()
            .filter_map(|id| world.shard(id))
            .filter(|shard| !shard.quarantined)
            .fold(Amount::ZERO, |sum, shard| {
                sum.checked_add(shard.instance.node.state().total_value())
                    .expect("sidechain value fits in u64")
            });
        AuditSnapshot {
            tick: self.snapshots.len() as u64,
            mc_height: world.chain.height(),
            minted: state.minted,
            utxo_value: state.utxos.total_value(),
            escrow_value,
            locked_value: state.registry.total_locked(),
            router_pending_value: world.router.pending_value(),
            sidechain_value,
        }
    }

    fn check(&mut self, world: &World) -> Result<(), AuditViolation> {
        let snapshot = self.snapshots.last().expect("snapshot recorded").clone();
        let state = world.chain.state();

        // 1. Conservation: nothing minted disappears, nothing appears
        //    unminted — under any fault mix.
        self.checks += 1;
        if snapshot.utxo_value.checked_add(snapshot.locked_value) != Some(snapshot.minted) {
            return Err(AuditViolation::Conservation {
                tick: snapshot.tick,
                utxo_value: snapshot.utxo_value,
                locked_value: snapshot.locked_value,
                minted: snapshot.minted,
            });
        }

        // 2. Per-chain safeguard. Quarantined shards are skipped (a
        //    contained panic leaves no guarantee about the node's
        //    in-memory state; the mainchain side is still audited
        //    above).
        for id in world.sidechain_ids() {
            let Some(shard) = world.shard(id) else {
                continue;
            };
            if shard.quarantined {
                continue;
            }
            self.checks += 1;
            let on_chain = shard.instance.node.state().total_value();
            let locked = state
                .registry
                .get(id)
                .map(|entry| entry.balance)
                .unwrap_or(Amount::ZERO);
            if on_chain > locked {
                return Err(AuditViolation::Safeguard {
                    chain: id.to_string(),
                    on_chain,
                    locked,
                });
            }
        }

        // 3. Exactly-once settlement per nullifier. The router rewinds
        //    its receipt stream with the chain on reorgs, so receipts
        //    visible here are all on the active branch: any duplicate
        //    terminal is a real double-settlement.
        let mut terminals: BTreeMap<Nullifier, (u32, u32)> = BTreeMap::new();
        for receipt in world.router.receipts() {
            let entry = terminals.entry(receipt.transfer.nullifier).or_default();
            match receipt.status {
                DeliveryStatus::Delivered { .. } => entry.0 += 1,
                DeliveryStatus::Refunded { .. } => entry.1 += 1,
                _ => {}
            }
        }
        for (nullifier, (delivered, refunded)) in terminals {
            self.checks += 1;
            if delivered + refunded > 1 {
                return Err(AuditViolation::DoubleSettlement {
                    nullifier,
                    delivered,
                    refunded,
                });
            }
        }

        // 4. Quality wars never crown a forgery: every accepted
        //    certificate must be absent from the forged-digest ledger.
        let forged = world.forged_certificate_digests();
        if !forged.is_empty() {
            for (id, entry) in state.registry.iter() {
                for (epoch, accepted) in &entry.certificates {
                    self.checks += 1;
                    let digest = accepted.certificate.digest();
                    if forged.contains(&digest) {
                        return Err(AuditViolation::ForgedWinner {
                            chain: id.to_string(),
                            epoch: *epoch,
                            digest,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}
