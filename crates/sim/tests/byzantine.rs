//! Composed long-horizon Byzantine scenarios with conservation
//! auditing: each scenario layers several faults (partitions, reorg
//! storms, withholding cascades, quality wars, relay equivocation) in
//! one run, a [`ConservationAuditor`] checks every value pool after
//! every tick, and every scenario must be bit-identical across
//! `StepMode::{Serial,Sharded}` × `VerifyMode::{Individual,Aggregated}`
//! — the fault machinery itself is part of the determinism contract.

use zendoo_mainchain::SidechainStatus;
use zendoo_sim::scenarios::{self, CASCADE_SENDERS};
use zendoo_sim::{ConservationAuditor, RunError, SimError, StepMode, VerifyMode, World};

/// Every (step, verify) combination each scenario must agree across.
const MODES: [(StepMode, VerifyMode, &str); 4] = [
    (
        StepMode::Serial,
        VerifyMode::Individual,
        "serial/individual",
    ),
    (
        StepMode::Sharded { workers: Some(3) },
        VerifyMode::Individual,
        "sharded(3)/individual",
    ),
    (
        StepMode::Serial,
        VerifyMode::Aggregated,
        "serial/aggregated",
    ),
    (
        StepMode::Sharded { workers: Some(2) },
        VerifyMode::Aggregated,
        "sharded(2)/aggregated",
    ),
];

/// Everything externally observable, for cross-mode comparison.
fn observe(world: &World) -> impl PartialEq + std::fmt::Debug {
    (
        world.chain.tip_hash(),
        world.chain.height(),
        world.chain.state().clone(),
        world.metrics.clone(),
    )
}

/// Runs `scenario` under every mode combination, asserts all runs are
/// bit-identical (world state, metrics and the full audited snapshot
/// stream), and returns the serial/individual reference run.
fn assert_identical_across_modes(
    name: &str,
    scenario: impl Fn(StepMode, VerifyMode) -> Result<(World, ConservationAuditor), RunError>,
) -> (World, ConservationAuditor) {
    let (reference, reference_audit) = scenario(MODES[0].0, MODES[0].1)
        .unwrap_or_else(|e| panic!("{name} failed under {}: {e}", MODES[0].2));
    assert!(
        !reference_audit.snapshots().is_empty(),
        "{name}: auditor observed no ticks"
    );
    for (mode, verify, label) in MODES.into_iter().skip(1) {
        let (world, audit) =
            scenario(mode, verify).unwrap_or_else(|e| panic!("{name} failed under {label}: {e}"));
        assert_eq!(
            observe(&reference),
            observe(&world),
            "{name}: {label} diverged from the serial/individual reference"
        );
        assert_eq!(
            reference_audit.snapshots(),
            audit.snapshots(),
            "{name}: {label} audit history diverged"
        );
    }
    (reference, reference_audit)
}

#[test]
fn partition_reorg_storm_settles_escrow_exactly_once() {
    let (world, audit) =
        assert_identical_across_modes("partition_reorg_storm", scenarios::partition_reorg_storm);

    // The partition really buffered and replayed mainchain blocks…
    assert_eq!(world.metrics.partitions, 1);
    assert!(world.metrics.blocks_buffered >= 1, "partition buffered");
    assert!(world.metrics.blocks_replayed >= 2, "heal replayed backlog");
    // …the storm really reorganized the chain three times…
    assert_eq!(world.metrics.reorgs, 3);
    assert!(world.metrics.sc_blocks_reverted >= 3);
    // …and the in-flight escrow still settled exactly once, with every
    // chain alive and certifying afterwards.
    assert_eq!(world.metrics.cross_transfers_initiated, 1);
    assert_eq!(world.metrics.cross_transfers_delivered, 1);
    assert_eq!(world.metrics.cross_transfers_refunded, 0);
    for id in world.sidechain_ids() {
        assert_eq!(
            world.sidechain_status_of(id),
            Some(SidechainStatus::Active),
            "chain {id} should survive the storm"
        );
    }
    assert!(world.conservation_holds() && world.safeguards_hold());
    let last = audit.last().expect("audited");
    assert_eq!(
        last.mc_height,
        world.chain.height(),
        "auditor saw the final tick"
    );
}

#[test]
fn quality_wars_never_crown_a_forgery() {
    let (world, audit) =
        assert_identical_across_modes("certifier_quality_wars", scenarios::certifier_quality_wars);

    // Both chains were under attack every epoch: forgeries were pooled
    // and every one was rejected by consensus (wrong-quality statements
    // fail proof verification; stale replays fail the quality rule).
    assert!(
        world.metrics.certificates_forged >= 8,
        "war produced forgeries each epoch (forged {})",
        world.metrics.certificates_forged
    );
    assert!(
        world.metrics.certificates_rejected >= world.metrics.certificates_forged,
        "every forgery was rejected (forged {}, rejected {})",
        world.metrics.certificates_forged,
        world.metrics.certificates_rejected
    );
    // The honest certifiers still won every epoch on both chains, and
    // value kept flowing.
    assert!(world.metrics.certificates_accepted >= 6);
    assert_eq!(world.metrics.cross_transfers_delivered, 1);
    for id in world.sidechain_ids() {
        assert_eq!(world.sidechain_status_of(id), Some(SidechainStatus::Active));
    }
    // The registry holds no forged digest (also audited every tick).
    let forged = world.forged_certificate_digests();
    assert!(!forged.is_empty());
    for (_, entry) in world.chain.state().registry.iter() {
        for accepted in entry.certificates.values() {
            assert!(
                !forged.contains(&accepted.certificate.digest()),
                "forged certificate accepted into the registry"
            );
        }
    }
    assert!(audit.checks() > 0);
}

#[test]
fn withholding_cascade_mass_refunds_in_one_window() {
    let (world, _audit) = assert_identical_across_modes("withholding_cascade", |mode, verify| {
        scenarios::withholding_cascade(mode, verify, 10_000)
    });

    // Six chains ceased in the same settlement window…
    let ceased: Vec<_> = world
        .sidechain_ids()
        .iter()
        .filter(|id| world.sidechain_status_of(id) == Some(SidechainStatus::Ceased))
        .cloned()
        .collect();
    assert_eq!(ceased.len(), CASCADE_SENDERS, "every withholder ceased");
    // …and every escrowed transfer towards them refunded exactly once
    // (per-nullifier exactly-once is audited every tick on top of the
    // aggregate counters here).
    assert_eq!(
        world.metrics.cross_transfers_initiated as usize,
        CASCADE_SENDERS
    );
    assert_eq!(
        world.metrics.cross_transfers_refunded as usize,
        CASCADE_SENDERS
    );
    assert_eq!(world.metrics.cross_transfers_delivered, 0);
    // The refunds landed while the mainchain digested real load: the
    // generated population's traffic flowed through the same blocks.
    assert!(
        world.metrics.sc_payments == 0 || world.metrics.forward_transfers >= 1,
        "sanity"
    );
    assert!(world.metrics.mc_blocks >= 16);
    // The healthy chains stayed live.
    let ids = world.sidechain_ids().to_vec();
    assert_eq!(
        world.sidechain_status_of(&ids[0]),
        Some(SidechainStatus::Active)
    );
    assert_eq!(
        world.sidechain_status_of(&ids[1]),
        Some(SidechainStatus::Active)
    );
    // Each sender got their value back on the mainchain: 100k genesis
    // minus the 10k forward transfer plus the 4k refund.
    for i in 0..CASCADE_SENDERS {
        let sender = world.user(&format!("sender-{i}")).unwrap().clone();
        assert_eq!(
            world.chain.state().utxos.balance_of(&sender.mc_address()),
            zendoo_core::ids::Amount::from_units(100_000 - 10_000 + 4_000),
            "sender-{i} refund"
        );
    }
    assert!(world.conservation_holds() && world.safeguards_hold());
}

#[test]
fn relay_equivocation_degrades_liveness_not_safety() {
    let (world, audit) =
        assert_identical_across_modes("relay_equivocation", scenarios::relay_equivocation);

    assert_eq!(world.metrics.relay_equivocations, 1);
    // The diverged shard buffered the canonical chain, the heal rolled
    // the phantom block back, and the backlog replayed.
    assert!(world.metrics.blocks_buffered >= 1);
    assert!(world.metrics.sc_blocks_reverted >= 1);
    assert!(world.metrics.blocks_replayed >= 1);
    // Safety held throughout: the transfer settled exactly once and
    // both chains kept certifying.
    assert_eq!(world.metrics.cross_transfers_delivered, 1);
    assert_eq!(world.metrics.cross_transfers_refunded, 0);
    for id in world.sidechain_ids() {
        assert_eq!(world.sidechain_status_of(id), Some(SidechainStatus::Active));
    }
    assert!(world.metrics.certificates_accepted >= 3);
    assert!(world.conservation_holds() && world.safeguards_hold());
    assert!(audit.snapshots().len() >= 14);
}

#[test]
fn long_horizon_soak_survives_sixty_four_epochs_of_mixed_faults() {
    let (world, audit) = assert_identical_across_modes("long_horizon_soak", |mode, verify| {
        scenarios::long_horizon_soak(mode, verify, 64)
    });

    // The horizon was real: ≥64 epochs certified under a standing
    // quality war with a fault injected almost every epoch.
    assert!(
        world.node().current_epoch() >= 64,
        "soaked {} epochs",
        world.node().current_epoch()
    );
    assert!(world.metrics.partitions >= 10, "partitions recurred");
    assert!(
        world.metrics.relay_equivocations >= 5,
        "equivocations recurred"
    );
    assert!(world.metrics.reorgs >= 10, "forks recurred");
    assert!(world.metrics.certificates_forged >= 60, "war ran all soak");
    // Not every forged certificate shows up as a rejection here: reorg
    // replays re-produce byte-identical honest certificates, so their
    // forged competitors dedup silently in the mempool, and the final
    // boundary's forgeries are pooled but never mined. "No forgery was
    // crowned" is instead enforced after every tick by the auditor's
    // `ForgedWinner` invariant; the floor below just proves consensus
    // kept actively rejecting fresh forgeries for the whole horizon.
    assert!(
        world.metrics.certificates_rejected >= 60,
        "rejected {} forgeries",
        world.metrics.certificates_rejected
    );
    // sc-2 ceased mid-soak and its in-flight transfer refunded; the
    // early transfer delivered. Exactly-once for both is audited every
    // tick.
    let ids = world.sidechain_ids().to_vec();
    assert_eq!(
        world.sidechain_status_of(&ids[0]),
        Some(SidechainStatus::Active)
    );
    assert_eq!(
        world.sidechain_status_of(&ids[1]),
        Some(SidechainStatus::Active)
    );
    assert_eq!(
        world.sidechain_status_of(&ids[2]),
        Some(SidechainStatus::Ceased)
    );
    assert_eq!(world.metrics.cross_transfers_delivered, 1);
    assert_eq!(world.metrics.cross_transfers_refunded, 1);
    assert!(world.conservation_holds() && world.safeguards_hold());
    // The auditor really watched the whole horizon.
    assert!(audit.snapshots().len() as u64 >= 64 * 6);
    assert!(audit.checks() > audit.snapshots().len() as u64);
}

#[test]
fn fork_deeper_than_history_is_a_typed_error() {
    use zendoo_sim::{Schedule, SimConfig};

    let mut world = World::new(SimConfig::default());
    Schedule::new().run(&mut world, 3).unwrap(); // genesis + declaration + 3 blocks
    let height = world.chain.height();

    // Depth 0 and too-deep requests both fail with the typed error and
    // leave the world untouched.
    for depth in [0, height, height + 10] {
        let tip_before = world.chain.tip_hash();
        match world.inject_mc_fork(depth) {
            Err(SimError::ForkTooDeep { requested, max }) => {
                assert_eq!(requested, depth);
                assert_eq!(max, height - 1);
                assert!(depth == 0 || requested > max);
            }
            other => panic!("depth {depth}: expected ForkTooDeep, got {other:?}"),
        }
        assert_eq!(
            world.chain.tip_hash(),
            tip_before,
            "rejected fork mutated the chain"
        );
    }

    // A fork of every legal depth still works.
    assert!(world.inject_mc_fork(height - 1).is_ok());
    assert_eq!(world.metrics.reorgs, 1);
    assert!(world.conservation_holds());
}
