//! The determinism contract under generated load: a world driven by
//! `zendoo-loadgen` traffic through the batched admission path is
//! bit-identical Serial vs Sharded (and across admission worker
//! counts), and the sharded block builder really does skip re-running
//! stage-1 and signature verification for admitted candidates.

use zendoo_loadgen::{LoadConfig, LoadGen, Population, Shape};
use zendoo_mainchain::sigbatch::AdmissionReport;
use zendoo_sim::{SimConfig, StepMode, World};

const TICKS: u64 = 14; // two full epochs (epoch_len 6 + submit window)
const BATCH: usize = 60;

/// Runs `TICKS` ticks of zipf self-pay load through the world's
/// batched admission path, settling each tick's confirmations back
/// into the population. Returns the world and every tick's report.
fn run_under_load(
    mode: StepMode,
    workers: usize,
    telemetry: bool,
) -> (World, Vec<AdmissionReport>) {
    let load = LoadConfig {
        users: 400,
        seed: 7,
        ..LoadConfig::default()
    };
    let mut population = Population::generate(&load);
    let config = SimConfig {
        step_mode: mode,
        telemetry,
        extra_genesis_outputs: population.genesis_outputs(),
        ..SimConfig::with_sidechains(2)
    };
    let mut world = World::new(config);
    // The two named genesis users (alice, bob) precede the population.
    population.bind_genesis(&world.chain, 2);
    let mut gen = LoadGen::new(population, Shape::Zipf { exponent: 1.0 }, &load);

    let mut reports = Vec::new();
    for _ in 0..TICKS {
        let batch = gen.next_batch(BATCH);
        reports.push(world.admit_mc_batch(batch, workers));
        world.step().unwrap();
        let tip = world.chain.tip_hash();
        gen.population_mut()
            .settle_block(world.chain.block(&tip).unwrap());
    }
    (world, reports)
}

/// Everything externally observable, for cross-mode comparison.
fn observe(world: &World) -> impl PartialEq + std::fmt::Debug {
    (
        world.chain.tip_hash(),
        world.chain.height(),
        world.chain.state().clone(),
        world.metrics.clone(),
    )
}

#[test]
fn loaded_world_is_bit_identical_serial_vs_sharded() {
    let (serial, serial_reports) = run_under_load(StepMode::Serial, 1, false);
    let (sharded, sharded_reports) =
        run_under_load(StepMode::Sharded { workers: Some(3) }, 4, false);

    // The workload was real: most batches fully admitted and settled,
    // and the epoch machinery kept certifying underneath the load.
    let admitted: usize = serial_reports.iter().map(|r| r.admitted).sum();
    assert!(
        admitted >= (TICKS as usize - 1) * BATCH,
        "load flowed through admission (admitted {admitted})"
    );
    assert!(serial_reports.iter().all(|r| r.sig_checks > 0));
    assert!(
        serial.metrics.certificates_accepted >= 2,
        "epochs certified"
    );
    assert!(serial.conservation_holds() && serial.safeguards_hold());

    // Admission itself is mode- and worker-independent…
    assert_eq!(
        serial_reports, sharded_reports,
        "admission reports diverged between 1 and 4 workers"
    );
    // …and so is everything the two worlds went on to build.
    assert_eq!(
        observe(&serial),
        observe(&sharded),
        "sharded world diverged from serial under generated load"
    );
}

#[test]
fn sharded_builder_reuses_admission_work_under_load() {
    let (world, reports) = run_under_load(StepMode::Sharded { workers: Some(3) }, 4, true);
    let snapshot = world.telemetry_snapshot();

    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let admitted: u64 = reports.iter().map(|r| r.admitted as u64).sum();
    // Certificates and router deliveries pool through the same
    // admission path, so the counter is at least the generated load.
    assert!(counter("mc.mempool.admitted") >= admitted);
    assert!(
        counter("mc.precheck.skipped") >= admitted,
        "every pooled candidate skipped the redundant stage-1 re-run \
         (skipped {}, admitted {admitted})",
        counter("mc.precheck.skipped")
    );
    assert!(
        counter("mc.sig_cache.hit") > 0,
        "block building consumed admission's signature verdicts"
    );
    assert!(
        snapshot
            .spans
            .get("sig.batch.verify")
            .is_some_and(|s| s.count > 0),
        "admission batches went through the batch verifier"
    );
    assert!(
        snapshot
            .spans
            .get("mc.mempool.admit")
            .is_some_and(|s| s.count > 0),
        "pool admissions were timed"
    );
}
