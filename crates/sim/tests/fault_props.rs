//! Property tests for the fault-composition harness: however a random
//! [`FaultPlan`] layers partitions, forks, withholding, quality wars
//! and relay equivocations, every tick's conservation audit passes —
//! and any failure is reproducible from the printed seed alone,
//! because the plan is a pure function of it.

use proptest::prelude::*;
use zendoo_sim::{
    Action, ConservationAuditor, FaultPlan, RunError, Schedule, SimConfig, StepMode, VerifyMode,
    World,
};

const CHAINS: usize = 3;
const TICKS: u64 = 26;

/// Runs the seed's random fault plan over a small cross-chain workload
/// with the auditor attached to every tick.
fn run_random_plan(seed: u64, mode: StepMode) -> Result<(World, ConservationAuditor), RunError> {
    let config = SimConfig {
        step_mode: mode,
        verify_mode: VerifyMode::Individual,
        ..SimConfig::with_sidechains(CHAINS)
    };
    let mut world = World::new(config);
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 10_000));
    let plan = FaultPlan::random(seed, CHAINS, TICKS);
    let mut auditor = ConservationAuditor::new();
    plan.run(&mut world, &schedule, TICKS, &mut auditor)?;
    Ok((world, auditor))
}

/// Everything externally observable, for reproducibility comparison.
fn observe(world: &World) -> impl PartialEq + std::fmt::Debug {
    (
        world.chain.tip_hash(),
        world.chain.height(),
        world.chain.state().clone(),
        world.metrics.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever faults the seed composes, the run never trips the
    /// auditor (a violation is an `Err` out of `FaultPlan::run`) and
    /// the final world conserves value. Chains are allowed to *cease*
    /// under random faults — that is Def 4.2 working — but value must
    /// never appear, vanish, or settle twice.
    #[test]
    fn prop_random_fault_plans_conserve_value(seed in any::<u64>()) {
        let (world, auditor) = run_random_plan(seed, StepMode::Serial)
            .unwrap_or_else(|e| panic!("replay with FaultPlan::random({seed}, {CHAINS}, {TICKS}): {e}"));
        prop_assert!(world.conservation_holds(), "seed {} broke conservation", seed);
        prop_assert!(world.safeguards_hold(), "seed {} broke the safeguard", seed);
        prop_assert_eq!(
            auditor.snapshots().len() as u64,
            TICKS,
            "seed {} was not audited every tick", seed
        );
        prop_assert!(auditor.checks() as usize > auditor.snapshots().len(), "seed {}", seed);
    }

    /// Malformed-metadata deposits are refunded, never stranded. On top
    /// of the seed's random plan (which may inject more of them), every
    /// run deposits one forward transfer with corrupted receiver
    /// metadata; after the faults heal and the system drains quietly
    /// for four epochs, every still-active chain's locked registry
    /// balance must reconcile *exactly* with its sidechain ledger.
    /// Under the historic bug the malformed amount stayed locked
    /// forever, which this check catches while the per-tick safeguard
    /// (ledger ≤ locked) cannot.
    #[test]
    fn prop_malformed_fts_reconcile_after_drain(seed in any::<u64>()) {
        let config = SimConfig {
            step_mode: StepMode::Serial,
            verify_mode: VerifyMode::Individual,
            ..SimConfig::with_sidechains(CHAINS)
        };
        let epoch_len = config.epoch_len as u64;
        let mut world = World::new(config);
        let schedule = Schedule::new()
            .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
            .at(1, Action::MalformedForwardTransferTo(0, "alice".into(), 2_000))
            .at(2, Action::CrossTransfer(0, 1, "alice".into(), 10_000));
        let plan = FaultPlan::random(seed, CHAINS, TICKS);
        let mut auditor = ConservationAuditor::new();
        plan.run(&mut world, &schedule, TICKS, &mut auditor)
            .unwrap_or_else(|e| panic!("replay with FaultPlan::random({seed}, {CHAINS}, {TICKS}): {e}"));
        prop_assert!(world.metrics.forward_transfers_malformed >= 1, "seed {}", seed);

        // Drain: no new transactions or faults for four epochs, so every
        // in-flight refund certificate matures.
        for _ in 0..4 * epoch_len {
            world.step().unwrap_or_else(|e| panic!("seed {seed} drain step: {e}"));
            auditor.observe(&world)
                .unwrap_or_else(|v| panic!("seed {seed} drain audit: {v}"));
        }
        auditor.check_reconciled(&world)
            .unwrap_or_else(|v| panic!("seed {seed} stranded value: {v}"));
        prop_assert!(world.conservation_holds(), "seed {} broke conservation", seed);
    }

    /// A plan is a pure function of its seed: the same seed replays to
    /// a bit-identical world and audit history, serially and sharded.
    #[test]
    fn prop_same_seed_reproduces_the_run(seed in any::<u64>()) {
        let plan = FaultPlan::random(seed, CHAINS, TICKS);
        prop_assert_eq!(plan.seed(), seed);
        prop_assert!(!plan.is_empty(), "random plans always schedule faults");

        let (first, first_audit) = run_random_plan(seed, StepMode::Serial)
            .unwrap_or_else(|e| panic!("replay with FaultPlan::random({seed}, {CHAINS}, {TICKS}): {e}"));
        for mode in [StepMode::Serial, StepMode::Sharded { workers: Some(3) }] {
            let (world, audit) = run_random_plan(seed, mode)
                .unwrap_or_else(|e| panic!("seed {seed} under {mode:?}: {e}"));
            prop_assert_eq!(
                &observe(&first),
                &observe(&world),
                "seed {} diverged under {:?}", seed, mode
            );
            prop_assert_eq!(
                first_audit.snapshots(),
                audit.snapshots(),
                "seed {} audit history diverged under {:?}", seed, mode
            );
        }
    }
}
