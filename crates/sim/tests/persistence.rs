//! World-level persistence contract: with `SimConfig::persist_dir`
//! set, the journaled store and indexer mirror the live world
//! bit-identically every tick — through kill-and-recover restarts,
//! torn journal tails, and mainchain reorgs — without perturbing the
//! run itself.

use std::path::PathBuf;

use zendoo_sim::{Action, Schedule, SimConfig, StepMode, VerifyMode, World};
use zendoo_store::chain_state_digest;

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("zendoo-sim-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn config(persist_dir: Option<PathBuf>) -> SimConfig {
    SimConfig {
        step_mode: StepMode::Serial,
        verify_mode: VerifyMode::Individual,
        persist_dir,
        ..SimConfig::with_sidechains(2)
    }
}

fn schedule() -> Schedule {
    Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 50_000))
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 8_000))
        .at(5, Action::ScPayOn(0, "alice".into(), "bob".into(), 1_000))
}

/// The full persistence story in one run: per-tick digest equality,
/// a mid-run kill-and-recover, a crash mid-append (torn tail), the
/// indexer serving balance/pending-inbound/receipt queries, and the
/// persisted world ending bit-identical to an unpersisted twin.
#[test]
fn persisted_world_matches_in_memory_through_kills_and_torn_tails() {
    let dir = temp_dir("lockstep");
    let cfg = config(Some(dir.clone()));
    let ticks = (cfg.epoch_len as u64 + 1) * 3;
    let mut world = World::new(cfg);
    let mut twin = World::new(config(None));
    let schedule = schedule();

    let mut max_pending = 0usize;
    let mut escrow_nullifier = None;
    for tick in 0..ticks {
        schedule.fire(&mut world, tick);
        world.step().unwrap();
        schedule.fire(&mut twin, tick);
        twin.step().unwrap();

        // Persisted state is bit-identical to the in-memory chain
        // after every single tick.
        let store = world.store().expect("persistence attached");
        assert_eq!(
            store.state_digest(),
            chain_state_digest(&world.chain),
            "persisted state diverged at tick {tick}"
        );

        // Track the cross transfer through the escrow index while it
        // is in flight.
        let indexer = world.indexer().expect("persistence attached");
        let dest = world.sidechain_id_at(1).unwrap();
        let pending = indexer.pending_inbound(&dest);
        max_pending = max_pending.max(pending.len());
        if let Some(entry) = pending.first() {
            assert_eq!(entry.amount.units(), 8_000);
            assert_eq!(entry.dest, dest);
            escrow_nullifier = Some(entry.nullifier);
        }

        if tick == 8 {
            // Kill-and-recover mid-run: the journal alone rebuilds the
            // store and indexer.
            world.reopen_persistence().unwrap();
        }
        if tick == 12 {
            // Crash mid-append: a frame header promising a record that
            // never finished. Recovery must discard exactly that tail.
            let journal = dir.join("utxo-journal.log");
            let mut contents = std::fs::read(&journal).unwrap();
            contents.extend_from_slice(&4096u32.to_be_bytes());
            contents.extend_from_slice(&[0xA5; 21]);
            std::fs::write(&journal, &contents).unwrap();
            world.reopen_persistence().unwrap();
            let stats = world.store().unwrap().replay_stats();
            assert_eq!(stats.torn_bytes, 25, "torn tail not discarded");
        }
    }

    // The escrow really flowed through the index: pending while in
    // flight, drained on settlement, terminal receipt served.
    assert!(max_pending >= 1, "cross transfer never showed as pending");
    let indexer = world.indexer().unwrap();
    assert_eq!(indexer.pending_total(), 0, "escrow stranded in the index");
    let nullifier = escrow_nullifier.expect("escrow was observed");
    let receipt = indexer
        .receipt_for(&nullifier)
        .expect("settled transfer has a receipt");
    assert_eq!(receipt.transfer.amount.units(), 8_000);
    assert_eq!(world.metrics.cross_transfers_delivered, 1);

    // Indexed balances agree with the chain for every named user.
    for name in ["alice", "bob"] {
        let address = world.user(name).unwrap().mc_address();
        assert_eq!(
            indexer.balance(&address),
            world.chain.state().utxos.balance_of(&address),
            "indexed balance diverged for {name}"
        );
    }

    // Persistence is write-only: the persisted world's outcome is
    // bit-identical to the unpersisted twin's.
    assert_eq!(world.chain.tip_hash(), twin.chain.tip_hash());
    assert_eq!(world.chain.height(), twin.chain.height());
    assert_eq!(world.metrics, twin.metrics);
    assert_eq!(world.router.receipts(), twin.router.receipts());
    assert!(world.conservation_holds() && world.safeguards_hold());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mainchain reorg rolls the store back in lockstep: disconnect
/// events rewind it to the fork base, the replacement branch reconnects
/// on top, and the journaled rollback survives a restart.
#[test]
fn reorg_rolls_the_persisted_store_back_in_lockstep() {
    let dir = temp_dir("reorg");
    let mut world = World::new(config(Some(dir.clone())));
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 30_000))
        .at(1, Action::CrossTransfer(0, 1, "alice".into(), 5_000));
    for tick in 0..6 {
        schedule.fire(&mut world, tick);
        world.step().unwrap();
    }

    world.inject_mc_fork(2).unwrap();
    assert_eq!(world.metrics.reorgs, 1);
    // The fork's disconnects/connects drain into the store on the next
    // tick's sync.
    world.step().unwrap();
    assert_eq!(
        world.store().unwrap().state_digest(),
        chain_state_digest(&world.chain),
        "store diverged across the reorg"
    );

    // The journaled rollback replays on recovery, and the run
    // continues cleanly afterwards.
    world.reopen_persistence().unwrap();
    for _ in 0..8 {
        world.step().unwrap();
        assert_eq!(
            world.store().unwrap().state_digest(),
            chain_state_digest(&world.chain)
        );
    }
    assert!(world.conservation_holds() && world.safeguards_hold());
    let _ = std::fs::remove_dir_all(&dir);
}
