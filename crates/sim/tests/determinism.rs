//! The sharded-world determinism contract: a parallel step is
//! bit-identical to a serial step, and a panicking shard is contained
//! without perturbing the rest of the world — with or without
//! telemetry recording enabled.

use zendoo_sim::{scenarios, Action, Schedule, SimConfig, StepMode, VerifyMode, World};
use zendoo_telemetry::{Histogram, Snapshot};

/// Every externally observable outcome of a run, for cross-mode
/// comparison.
fn observe(world: &World) -> impl PartialEq + std::fmt::Debug {
    let tip = world.chain.tip_hash();
    let height = world.chain.height();
    let state = world.chain.state().clone();
    let metrics = world.metrics.clone();
    let receipts = world.router.receipts().to_vec();
    let settlements = world.router.settlements().to_vec();
    let per_chain: Vec<_> = world
        .sidechain_ids()
        .iter()
        .map(|id| {
            let node = world.node_of(id).unwrap();
            let alice = world.user("alice").unwrap().sc_address_on(id);
            let bob = world.user("bob").unwrap().sc_address_on(id);
            (
                *id,
                world.sidechain_balance_of(id),
                world.sidechain_status_of(id),
                node.balance_of(&alice),
                node.balance_of(&bob),
                node.current_epoch(),
                node.chain().len(),
                node.inbound_cross_transfers().to_vec(),
                world.shard_metrics_of(id).unwrap().clone(),
                world.pending_inbound_of(id).to_vec(),
            )
        })
        .collect();
    (
        tip,
        height,
        state,
        metrics,
        receipts,
        settlements,
        per_chain,
    )
}

#[test]
fn sharded_16_chain_world_is_bit_identical_to_serial() {
    let epochs = 2;
    let serial = scenarios::cross_chain_ring(16, epochs, StepMode::Serial).unwrap();
    let sharded =
        scenarios::cross_chain_ring(16, epochs, StepMode::Sharded { workers: Some(4) }).unwrap();
    // The workload is non-trivial: every chain certified and the ring
    // transfers settled.
    assert!(serial.metrics.certificates_accepted >= 16);
    assert_eq!(serial.metrics.cross_transfers_initiated, 16);
    assert_eq!(serial.metrics.cross_transfers_delivered, 16);
    assert!(serial.conservation_holds() && serial.safeguards_hold());

    assert_eq!(
        observe(&serial),
        observe(&sharded),
        "sharded step diverged from the serial reference"
    );
}

#[test]
fn worker_count_does_not_change_outcomes() {
    let base = scenarios::cross_chain_ring(5, 1, StepMode::Sharded { workers: Some(1) }).unwrap();
    for workers in [2usize, 5, 16] {
        let other = scenarios::cross_chain_ring(
            5,
            1,
            StepMode::Sharded {
                workers: Some(workers),
            },
        )
        .unwrap();
        assert_eq!(
            observe(&base),
            observe(&other),
            "outcome changed at workers={workers}"
        );
    }
}

/// Runs a 4-chain world in `mode` with a crash fault injected on chain
/// 2 just before its epoch-0 certificate.
fn panic_world(mode: StepMode) -> World {
    let config = SimConfig {
        step_mode: mode,
        ..SimConfig::with_sidechains(4)
    };
    let mut world = World::new(config.clone());
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 20_000))
        .at(4, Action::InjectShardPanic(2));
    let ticks = (config.epoch_len as u64 + 1) * 3;
    schedule.run(&mut world, ticks).unwrap();
    world
}

#[test]
fn shard_panic_is_contained_and_quarantines_only_that_chain() {
    for mode in [
        StepMode::Serial,
        StepMode::Sharded { workers: Some(4) },
        StepMode::Sharded { workers: Some(1) },
    ] {
        let world = panic_world(mode);
        let ids = world.sidechain_ids().to_vec();

        // The panic was contained, counted, and quarantined chain 2.
        assert_eq!(world.metrics.shard_panics, 1, "{mode:?}");
        assert_eq!(world.quarantined_sidechains(), vec![ids[2]], "{mode:?}");
        assert_eq!(world.shard_metrics_of(&ids[2]).unwrap().panics, 1);
        assert!(world.shard(&ids[2]).unwrap().is_quarantined());

        // The quarantined chain stopped certifying and ceased on the
        // mainchain — a crash fault degrades into the paper's liveness
        // fault (Def 4.2), nothing worse.
        assert_eq!(
            world.sidechain_status_of(&ids[2]),
            Some(zendoo_mainchain::SidechainStatus::Ceased),
            "{mode:?}"
        );

        // Every other chain kept certifying on schedule.
        for id in [ids[0], ids[1], ids[3]] {
            assert_eq!(
                world.sidechain_status_of(&id),
                Some(zendoo_mainchain::SidechainStatus::Active),
                "{mode:?}"
            );
            assert!(world.shard_metrics_of(&id).unwrap().certificates_produced >= 2);
        }
        // And the world's global invariants held throughout.
        assert!(world.conservation_holds(), "{mode:?}");
        assert!(world.safeguards_hold(), "{mode:?}");
    }
}

#[test]
fn panic_containment_is_mode_independent() {
    let serial = panic_world(StepMode::Serial);
    let sharded = panic_world(StepMode::Sharded { workers: Some(3) });
    assert_eq!(
        observe(&serial),
        observe(&sharded),
        "panic containment diverged across modes"
    );
}

/// An escrow settlement landing in the very tick a shard is
/// quarantined, plus a second escrowed transfer whose destination *is*
/// the quarantined chain: the quarantine path cannot strand escrowed
/// value in either step mode — the first transfer delivers, the second
/// refunds once the crashed chain ceases, and both modes agree
/// bit-for-bit.
fn escrow_vs_quarantine_world(mode: StepMode) -> World {
    let config = SimConfig {
        step_mode: mode,
        ..SimConfig::with_sidechains(3)
    };
    let mut world = World::new(config);
    let schedule = Schedule::new()
        .at(0, Action::ForwardTransferTo(0, "alice".into(), 20_000))
        // Escrows in epoch 0; its window matures at MC height 10, so
        // the settlement transaction (escrow-kind spend) is mined in
        // the block of tick 9 — the same tick the panic fires.
        .at(2, Action::CrossTransfer(0, 1, "alice".into(), 4_000))
        // Escrows in epoch 1, maturing after the crashed chain ceased:
        // exercises the consensus-checked refund of escrow to a dead
        // destination.
        .at(7, Action::CrossTransfer(0, 2, "alice".into(), 3_000))
        .at(9, Action::InjectShardPanic(2));
    schedule.run(&mut world, 18).unwrap();
    world
}

#[test]
fn escrow_spend_in_quarantine_tick_strands_no_value() {
    for mode in [StepMode::Serial, StepMode::Sharded { workers: Some(3) }] {
        let world = escrow_vs_quarantine_world(mode);
        let ids = world.sidechain_ids().to_vec();

        // The crash was contained in the settlement tick and the chain
        // ceased as a liveness fault.
        assert_eq!(world.metrics.shard_panics, 1, "{mode:?}");
        assert_eq!(world.quarantined_sidechains(), vec![ids[2]], "{mode:?}");
        assert_eq!(
            world.sidechain_status_of(&ids[2]),
            Some(zendoo_mainchain::SidechainStatus::Ceased),
            "{mode:?}"
        );

        // No escrowed value stranded: one transfer delivered (same
        // tick as the panic), the other refunded after the ceasing.
        assert_eq!(world.metrics.cross_transfers_initiated, 2, "{mode:?}");
        assert_eq!(world.metrics.cross_transfers_delivered, 1, "{mode:?}");
        assert_eq!(world.metrics.cross_transfers_refunded, 1, "{mode:?}");
        let records = world.router.settlements();
        assert_eq!(records.len(), 2, "{mode:?}");
        assert_eq!(
            records[0].mc_height, 11,
            "epoch-0 settlement landed in the quarantine tick's block ({mode:?})"
        );
        assert_eq!(records[1].refund_txs, 1, "{mode:?}");

        // The refund paid alice's payback address on the mainchain.
        let alice = world.user("alice").unwrap().clone();
        assert_eq!(
            world
                .chain
                .state()
                .utxos
                .balance_of(&alice.mc_address())
                .units(),
            1_000_000 - 20_000 + 3_000,
            "{mode:?}"
        );
        assert!(world.conservation_holds(), "{mode:?}");
        assert!(world.safeguards_hold(), "{mode:?}");
    }

    // And the whole story is bit-identical across step modes.
    let serial = escrow_vs_quarantine_world(StepMode::Serial);
    let sharded = escrow_vs_quarantine_world(StepMode::Sharded { workers: Some(3) });
    assert_eq!(
        observe(&serial),
        observe(&sharded),
        "escrow-vs-quarantine run diverged across modes"
    );
}

// ---- Telemetry recording must not perturb determinism ---------------

/// Runs the ring workload with telemetry recording **on** from
/// construction.
fn instrumented_ring(chains: usize, epochs: u32, mode: StepMode) -> World {
    let config = SimConfig {
        step_mode: mode,
        epoch_len: scenarios::ring_epoch_len(chains),
        telemetry: true,
        ..SimConfig::with_sidechains(chains)
    };
    let ticks = (config.epoch_len as u64 + 1) * (epochs as u64 + 1);
    let mut world = World::new(config);
    scenarios::ring_schedule(chains)
        .run(&mut world, ticks)
        .unwrap();
    world
}

/// The deterministic projection of a snapshot: everything except
/// measured wall-clock nanoseconds (span durations vary run to run;
/// span *occurrence counts*, counters, gauges and value histograms
/// must not).
#[allow(clippy::type_complexity)]
fn deterministic_view(
    snapshot: &Snapshot,
) -> (
    Vec<(String, u64)>,
    Vec<(String, u64)>,
    Vec<(String, u64)>,
    Vec<(String, Histogram)>,
) {
    (
        snapshot
            .spans
            .iter()
            .map(|(path, stats)| (path.clone(), stats.count))
            .collect(),
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), *value))
            .collect(),
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), *value))
            .collect(),
        snapshot
            .histograms
            .iter()
            .map(|(name, hist)| (name.clone(), hist.clone()))
            .collect(),
    )
}

/// The tentpole determinism claim under instrumentation: a recording
/// 16-chain world is still bit-identical Serial vs Sharded (telemetry
/// is strictly write-only — no instrument site feeds back into
/// consensus or scheduling).
#[test]
fn instrumented_16_chain_world_is_bit_identical_across_modes() {
    let serial = instrumented_ring(16, 1, StepMode::Serial);
    let sharded = instrumented_ring(16, 1, StepMode::Sharded { workers: Some(4) });
    assert!(serial.metrics.certificates_accepted >= 16);
    assert!(serial.conservation_holds() && serial.safeguards_hold());
    assert_eq!(
        observe(&serial),
        observe(&sharded),
        "recording telemetry perturbed the sharded/serial contract"
    );

    // Both modes recorded real data…
    let serial_snap = serial.telemetry_snapshot();
    let sharded_snap = sharded.telemetry_snapshot();
    assert!(!serial_snap.is_empty() && !sharded_snap.is_empty());
    // …and the counters that describe *outcomes* (rather than how the
    // mode schedules verification work) agree across modes exactly.
    for name in [
        "mc.blocks_connected",
        "mc.rejects",
        "router.certs_observed",
        "router.delivered",
        "shard.sc_blocks_forged",
        "shard.certificates_produced",
    ] {
        assert_eq!(
            serial_snap.counters.get(name),
            sharded_snap.counters.get(name),
            "outcome counter {name} diverged across modes"
        );
    }
    assert_eq!(
        serial_snap.histograms.get("router.settlement.batch_size"),
        sharded_snap.histograms.get("router.settlement.batch_size"),
        "settlement batch-size histogram diverged across modes"
    );
}

// ---- Aggregated verification must not perturb consensus --------------

/// Runs the ring workload under an explicit (step mode, verify mode)
/// pair, recording telemetry.
fn verify_mode_ring(chains: usize, step_mode: StepMode, verify_mode: VerifyMode) -> World {
    let config = SimConfig {
        step_mode,
        verify_mode,
        epoch_len: scenarios::ring_epoch_len(chains),
        telemetry: true,
        ..SimConfig::with_sidechains(chains)
    };
    let ticks = (config.epoch_len as u64 + 1) * 2;
    let mut world = World::new(config);
    scenarios::ring_schedule(chains)
        .run(&mut world, ticks)
        .unwrap();
    world
}

/// The aggregation acceptance claim: [`VerifyMode::Aggregated`] is a
/// pure verification-cost optimisation — every externally observable
/// outcome is bit-identical to [`VerifyMode::Individual`], in both
/// step modes, and the cross pairs agree too (Serial×Individual ==
/// Sharded×Aggregated and so on).
#[test]
fn aggregated_mode_is_bit_identical_to_individual_across_step_modes() {
    let reference = verify_mode_ring(8, StepMode::Serial, VerifyMode::Individual);
    assert!(reference.metrics.certificates_accepted >= 8);
    assert!(reference.conservation_holds() && reference.safeguards_hold());
    let expected = observe(&reference);

    for (step_mode, verify_mode) in [
        (StepMode::Serial, VerifyMode::Aggregated),
        (
            StepMode::Sharded { workers: Some(4) },
            VerifyMode::Individual,
        ),
        (
            StepMode::Sharded { workers: Some(4) },
            VerifyMode::Aggregated,
        ),
    ] {
        let world = verify_mode_ring(8, step_mode, verify_mode);
        assert_eq!(world.verify_mode(), verify_mode);
        assert_eq!(
            expected,
            observe(&world),
            "({step_mode:?}, {verify_mode:?}) diverged from (Serial, Individual)"
        );
        let snapshot = world.telemetry_snapshot();
        if verify_mode == VerifyMode::Aggregated {
            // The aggregated runs really built block proofs — the
            // bit-identical outcome is not because the mode was inert.
            let builds = snapshot.spans.get("mc.agg.build").map_or(0, |s| s.count);
            assert!(builds > 0, "no block proofs built under {step_mode:?}");
            assert_eq!(
                snapshot.counters.get("mc.agg.build_failed"),
                None,
                "block-proof aggregation failed under {step_mode:?}"
            );
        } else {
            assert!(!snapshot.spans.contains_key("mc.agg.build"));
        }
    }
}

// ---- Composed Byzantine faults live inside the contract too ----------

/// The fault machinery itself — partition buffering, backlog replay,
/// fork-branch replay, quality-war forgery pooling — must not leak
/// scheduling nondeterminism: a composed-fault world (partition healed
/// into a three-fork reorg storm with escrow in flight) is
/// bit-identical across the whole step-mode × worker-count ×
/// verify-mode matrix, down to the per-tick audit snapshot stream.
#[test]
fn composed_fault_world_is_bit_identical_across_the_mode_matrix() {
    let (reference, reference_audit) =
        scenarios::partition_reorg_storm(StepMode::Serial, VerifyMode::Individual).unwrap();
    // The reference run really exercised the fault paths.
    assert!(reference.metrics.partitions >= 1 && reference.metrics.reorgs >= 3);
    assert!(reference.metrics.blocks_replayed >= 2);

    for verify in [VerifyMode::Individual, VerifyMode::Aggregated] {
        for workers in [Some(1), Some(4), None] {
            let (world, audit) =
                scenarios::partition_reorg_storm(StepMode::Sharded { workers }, verify)
                    .unwrap_or_else(|e| panic!("workers={workers:?}/{verify:?}: {e}"));
            assert_eq!(
                observe(&reference),
                observe(&world),
                "composed-fault world diverged at workers={workers:?} {verify:?}"
            );
            assert_eq!(
                reference_audit.snapshots(),
                audit.snapshots(),
                "audit history diverged at workers={workers:?} {verify:?}"
            );
        }
    }
}

/// Two identical instrumented runs of the *same* mode produce the same
/// snapshot modulo wall-clock nanoseconds: fixed key order, identical
/// span counts, counters, gauges and value histograms — the
/// "aggregates deterministically" half of the recorder contract, under
/// real worker threads.
#[test]
fn instrumented_runs_are_reproducible_within_a_mode() {
    for mode in [StepMode::Serial, StepMode::Sharded { workers: Some(3) }] {
        let first = instrumented_ring(4, 1, mode).telemetry_snapshot();
        let second = instrumented_ring(4, 1, mode).telemetry_snapshot();
        assert_eq!(
            deterministic_view(&first),
            deterministic_view(&second),
            "snapshot not reproducible in {mode:?}"
        );
    }
}
