//! End-to-end checks of the load generator: determinism, shape
//! properties, and survival of generated traffic through the real
//! admission + mining path.

use zendoo_loadgen::{LoadConfig, LoadGen, Population, Shape};
use zendoo_mainchain::chain::{Blockchain, ChainParams};
use zendoo_mainchain::mempool::fee_of;
use zendoo_mainchain::miner::Miner;
use zendoo_mainchain::transaction::{McTransaction, Output};
use zendoo_mainchain::wallet::Wallet;

fn config(users: usize) -> LoadConfig {
    LoadConfig {
        users,
        ..LoadConfig::default()
    }
}

/// A chain whose premine is exactly the population's funding.
fn bound(config: &LoadConfig) -> (Blockchain, Population) {
    let mut population = Population::generate(config);
    let chain = Blockchain::new(ChainParams {
        genesis_outputs: population.genesis_outputs(),
        ..ChainParams::default()
    });
    population.bind_genesis(&chain, 0);
    (chain, population)
}

#[test]
fn identical_seeds_emit_identical_traffic() {
    let config = config(500);
    let mut batches = Vec::new();
    for _ in 0..2 {
        let (_, population) = bound(&config);
        let mut gen = LoadGen::new(population, Shape::Zipf { exponent: 1.1 }, &config);
        let ids: Vec<_> = gen
            .next_batch(200)
            .iter()
            .map(McTransaction::txid)
            .collect();
        batches.push(ids);
    }
    assert_eq!(
        batches[0], batches[1],
        "traffic is a pure function of the seed"
    );
    assert_eq!(batches[0].len(), 200);
}

#[test]
fn generated_traffic_survives_real_admission_and_mining() {
    let config = config(300);
    let (mut chain, population) = bound(&config);
    let mut gen = LoadGen::new(population, Shape::Uniform, &config);
    let mut miner = Miner::new(Wallet::from_seed(b"load-miner").address());
    miner.max_txs_per_block = 10_000;

    for round in 0..3u64 {
        let batch = gen.next_batch(150);
        assert_eq!(batch.len(), 150, "population large enough per round");
        let report = miner.submit_batch(&chain, batch);
        assert_eq!(
            report.admitted, 150,
            "round {round}: every generated tx admits"
        );
        assert_eq!(report.rejected, 0);
        let block = miner.mine(&mut chain, round + 1).unwrap();
        assert_eq!(
            block.transactions.len(),
            151,
            "round {round}: coinbase + the whole batch confirms"
        );
        gen.population_mut().settle_block(&block);
        assert_eq!(gen.population().in_flight(), 0);
    }
}

#[test]
fn zipf_concentrates_activity_on_hot_users() {
    let config = config(10_000);
    let (_, population) = bound(&config);
    let mut gen = LoadGen::new(population, Shape::Zipf { exponent: 1.0 }, &config);
    let batch = gen.next_batch(200);
    // Recover each spender's rank from its funded genesis index: user
    // ranks are genesis-output order, so a zipf draw should sit far
    // below the uniform mean rank of ~5000.
    let (_, pop2) = bound(&config);
    let address_rank: std::collections::HashMap<_, _> =
        (0..pop2.len()).map(|i| (pop2.address_of(i), i)).collect();
    let mean_rank: f64 = batch
        .iter()
        .map(|tx| {
            let McTransaction::Transfer(t) = tx else {
                panic!("self-pay shape emits transfers")
            };
            let Output::Regular(out) = &t.outputs[0] else {
                panic!("self-pay output")
            };
            address_rank[&out.address] as f64
        })
        .sum::<f64>()
        / batch.len() as f64;
    assert!(
        mean_rank < 2_000.0,
        "zipf mean rank {mean_rank} should sit far below the uniform 5000"
    );
}

#[test]
fn flash_crowd_bids_base_and_surge_fees() {
    let config = config(2_000);
    let (chain, population) = bound(&config);
    let shape = Shape::FlashCrowd {
        surge_bp: 1_000, // 10 %
        surge_multiplier: 50,
    };
    let mut gen = LoadGen::new(population, shape, &config);
    let batch = gen.next_batch(500);
    let lookup = |op: &zendoo_mainchain::transaction::OutPoint| {
        chain.state().utxos.get(op).map(|o| o.amount)
    };
    let base = config.fee_min;
    let surge = base * 50;
    let mut surged = 0usize;
    for tx in &batch {
        let fee = fee_of(tx, lookup).units();
        assert!(
            fee == base || fee == surge,
            "flash-crowd fees are bimodal, got {fee}"
        );
        if fee == surge {
            surged += 1;
        }
    }
    assert!(surged > 10, "surge bidders present ({surged})");
    assert!(surged < 200, "surge stays a minority ({surged})");
}

#[test]
fn drain_the_bridge_emits_valid_forward_transfers() {
    let config = config(400);
    let (chain, population) = bound(&config);
    let sidechains: Vec<_> = (0..8)
        .map(|i| zendoo_core::ids::SidechainId::from_label(&format!("drain-{i}")))
        .collect();
    let shape = Shape::DrainTheBridge {
        sidechains: sidechains.clone(),
    };
    let mut gen = LoadGen::new(population, shape, &config);
    let batch = gen.next_batch(200);
    let mut seen = std::collections::HashSet::new();
    for tx in &batch {
        let McTransaction::Transfer(t) = tx else {
            panic!("drain shape emits transfers")
        };
        let Output::Forward(ft) = &t.outputs[0] else {
            panic!("first output is the forward transfer")
        };
        assert!(sidechains.contains(&ft.sidechain_id));
        assert!(
            zendoo_latus::tx::ReceiverMetadata::parse(&ft.receiver_metadata).is_some(),
            "metadata parses on the sidechain side"
        );
        assert!(!ft.amount.is_zero(), "half the coin crosses the bridge");
        seen.insert(ft.sidechain_id);
        // Change keeps the user alive for later rounds.
        assert!(matches!(t.outputs[1], Output::Regular(_)));
        // And the whole thing still prechecks.
        zendoo_mainchain::pipeline::precheck_transaction(tx).unwrap();
        assert!(!fee_of(tx, |op| chain.state().utxos.get(op).map(|o| o.amount)).is_zero());
    }
    assert!(seen.len() > 1, "rush spreads across sidechains");
}

#[test]
fn release_unconfirmed_lets_users_retry() {
    let config = config(50);
    let (_, population) = bound(&config);
    let mut gen = LoadGen::new(population, Shape::Uniform, &config);
    let first = gen.next_batch(50);
    assert_eq!(first.len(), 50);
    // Everyone is in flight: nothing more to generate.
    assert!(gen.next_batch(10).is_empty());
    gen.population_mut().release_unconfirmed();
    let retry = gen.next_batch(50);
    assert_eq!(
        retry.len(),
        50,
        "released users spend their confirmed coin again"
    );
}
