//! A deterministic keyed-user population and its confirmed-UTXO
//! ledger.
//!
//! Every user is a real [`Wallet`] derived eagerly from the population
//! seed, funded by one genesis output, and tracked as a single-UTXO
//! self-pay chain: each generated transaction spends the user's
//! current confirmed outpoint, and [`Population::settle`] advances the
//! chain when the mainchain confirms it. Generation never double-
//! spends — a user with an in-flight transaction is skipped until the
//! transaction confirms or [`Population::release_unconfirmed`] resets
//! it — so the traffic a [`crate::LoadGen`] emits is valid against the
//! confirmed chain by construction (and stays deterministic: the whole
//! population state is a pure function of the seed and the settled
//! txid sequence).

use std::collections::HashMap;

use zendoo_core::ids::{Address, Amount};
use zendoo_mainchain::chain::Blockchain;
use zendoo_mainchain::transaction::{OutPoint, TxOut};
use zendoo_mainchain::wallet::Wallet;
use zendoo_primitives::digest::Digest32;

/// Sizing and fee knobs for a generated population.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Number of keyed users (each funded by one genesis output).
    pub users: usize,
    /// Genesis funding per user, in units.
    pub funding: u64,
    /// Seed for key derivation and traffic randomness.
    pub seed: u64,
    /// Lowest fee (units) a generated transaction pays.
    pub fee_min: u64,
    /// Highest fee (units) a generated transaction pays.
    pub fee_max: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            users: 10_000,
            funding: 1_000_000,
            seed: 42,
            fee_min: 1,
            fee_max: 1_000,
        }
    }
}

/// The outcome a generated transaction commits when it confirms.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingSpend {
    /// The in-flight transaction.
    pub txid: Digest32,
    /// The user's next confirmed coin: the change output this
    /// transaction creates (`None` exhausts the user).
    pub next: Option<(OutPoint, Amount)>,
}

/// One keyed user: a wallet plus its current confirmed coin.
#[derive(Clone, Debug)]
pub(crate) struct LoadUser {
    pub wallet: Wallet,
    /// The user's single confirmed UTXO (`None` before
    /// [`Population::bind_genesis`] or once exhausted).
    pub coin: Option<(OutPoint, Amount)>,
    /// The unconfirmed spend of `coin`, if one is in flight.
    pub pending: Option<PendingSpend>,
}

/// A deterministic population of funded users.
///
/// # Examples
///
/// ```
/// use zendoo_loadgen::{LoadConfig, Population};
/// use zendoo_mainchain::chain::{Blockchain, ChainParams};
///
/// let config = LoadConfig { users: 100, ..LoadConfig::default() };
/// let mut population = Population::generate(&config);
/// let params = ChainParams {
///     genesis_outputs: population.genesis_outputs(),
///     ..ChainParams::default()
/// };
/// let chain = Blockchain::new(params);
/// population.bind_genesis(&chain, 0);
/// assert_eq!(population.len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct Population {
    pub(crate) users: Vec<LoadUser>,
    /// In-flight txid → user index, for O(confirmed) settlement.
    in_flight: HashMap<Digest32, usize>,
    funding: Amount,
}

impl Population {
    /// Derives `config.users` wallets eagerly from `config.seed`.
    /// Derivation is the expensive part of construction (one key
    /// derivation per user) and is paid exactly once; the same
    /// population can then back any number of traffic shapes.
    pub fn generate(config: &LoadConfig) -> Self {
        let users = (0..config.users)
            .map(|i| LoadUser {
                wallet: Wallet::from_seed(format!("loadgen-{}-user-{i}", config.seed).as_bytes()),
                coin: None,
                pending: None,
            })
            .collect();
        Population {
            users,
            in_flight: HashMap::new(),
            funding: Amount::from_units(config.funding),
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` for an empty population.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Number of transactions currently awaiting confirmation.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// A user's mainchain address.
    pub fn address_of(&self, index: usize) -> Address {
        self.users[index].wallet.address()
    }

    /// One genesis funding output per user, in user order. Hand these
    /// to [`zendoo_mainchain::chain::ChainParams::genesis_outputs`]
    /// (or `SimConfig::extra_genesis_outputs`), then call
    /// [`Population::bind_genesis`] once the chain exists.
    pub fn genesis_outputs(&self) -> Vec<TxOut> {
        self.users
            .iter()
            .map(|user| TxOut::regular(user.wallet.address(), self.funding))
            .collect()
    }

    /// Binds every user to their genesis coin: output `first_index + i`
    /// of the genesis coinbase. `first_index` is the number of genesis
    /// outputs that precede this population's (0 when
    /// [`Population::genesis_outputs`] *is* the premine; the named
    /// users' count when appended via `extra_genesis_outputs`).
    ///
    /// # Panics
    ///
    /// If the expected outpoints are not in the confirmed UTXO set
    /// (wrong `first_index`, or funding already spent).
    pub fn bind_genesis(&mut self, chain: &Blockchain, first_index: u32) {
        let genesis = chain
            .block(&chain.genesis_hash())
            .expect("genesis block exists");
        let txid = genesis.transactions[0].txid();
        for (i, user) in self.users.iter_mut().enumerate() {
            let outpoint = OutPoint {
                txid,
                index: first_index + i as u32,
            };
            let funded = chain
                .state()
                .utxos
                .get(&outpoint)
                .unwrap_or_else(|| panic!("population coin {i} missing at {outpoint:?}"));
            assert_eq!(
                funded.address,
                user.wallet.address(),
                "population coin {i} funds a different address (first_index wrong?)"
            );
            user.coin = Some((outpoint, funded.amount));
            user.pending = None;
        }
        self.in_flight.clear();
    }

    /// Records `txid` as user `index`'s in-flight spend.
    pub(crate) fn mark_pending(&mut self, index: usize, spend: PendingSpend) {
        self.in_flight.insert(spend.txid, index);
        self.users[index].pending = Some(spend);
    }

    /// Returns `true` if user `index` can spend right now (funded, no
    /// spend in flight).
    pub(crate) fn available(&self, index: usize) -> bool {
        let user = &self.users[index];
        user.pending.is_none() && user.coin.is_some()
    }

    /// Advances every user whose in-flight transaction appears in
    /// `confirmed`: their tracked coin becomes the confirmed change
    /// output. O(confirmed), independent of the population size.
    pub fn settle<I: IntoIterator<Item = Digest32>>(&mut self, confirmed: I) {
        for txid in confirmed {
            let Some(index) = self.in_flight.remove(&txid) else {
                continue;
            };
            let user = &mut self.users[index];
            if let Some(pending) = user.pending.take() {
                user.coin = pending.next;
            }
        }
    }

    /// Convenience: settles every transaction of a confirmed block.
    pub fn settle_block(&mut self, block: &zendoo_mainchain::block::Block) {
        self.settle(block.transactions.iter().map(|tx| tx.txid()));
    }

    /// Forgets every in-flight spend without advancing coins: users
    /// whose transactions were evicted, rejected or orphaned retry
    /// from their last *confirmed* coin. (A released transaction that
    /// later confirms anyway is re-settled harmlessly: `settle` skips
    /// unknown txids.)
    pub fn release_unconfirmed(&mut self) {
        for index in std::mem::take(&mut self.in_flight).into_values() {
            self.users[index].pending = None;
        }
    }

    /// Total value the population still controls (confirmed coins
    /// only; in-flight spends count their *current* coin).
    pub fn confirmed_value(&self) -> Amount {
        Amount::checked_sum(
            self.users
                .iter()
                .filter_map(|user| user.coin.map(|(_, amount)| amount)),
        )
        .expect("population value fits in u64")
    }
}
