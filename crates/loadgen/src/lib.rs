//! # zendoo-loadgen
//!
//! Deterministic load generation for the Zendoo mainchain admission
//! path: populations of up to 10⁶ real keyed users (each a funded
//! [`zendoo_mainchain::wallet::Wallet`]), activity distributions from
//! uniform to zipf, and adversarial traffic shapes (flash crowds of
//! surge-fee bidders, bridge-draining forward-transfer rushes across
//! dozens of sidechains).
//!
//! The generator emits *real* signed transactions that hold up under
//! the full admission pipeline — stage-1 precheck, UTXO resolution,
//! batched signature verification, fee-prioritized pooling — whether
//! driven standalone against a [`zendoo_mainchain::chain::Blockchain`]
//! or through the sim `World`'s `admit_mc_batch`. Everything is a pure
//! function of the seed: two generators with the same config, shape
//! and settle history emit byte-identical traffic, which is what lets
//! the sim's Serial-vs-Sharded determinism tests run under load.
//!
//! ```
//! use zendoo_loadgen::{LoadConfig, LoadGen, Population, Shape};
//! use zendoo_mainchain::chain::{Blockchain, ChainParams};
//!
//! let config = LoadConfig { users: 200, ..LoadConfig::default() };
//! let mut population = Population::generate(&config);
//! let chain = Blockchain::new(ChainParams {
//!     genesis_outputs: population.genesis_outputs(),
//!     ..ChainParams::default()
//! });
//! population.bind_genesis(&chain, 0);
//!
//! let mut gen = LoadGen::new(population, Shape::Zipf { exponent: 1.0 }, &config);
//! let batch = gen.next_batch(100);
//! assert_eq!(batch.len(), 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod population;
pub mod traffic;

pub use population::{LoadConfig, Population};
pub use traffic::{LoadGen, Shape};
