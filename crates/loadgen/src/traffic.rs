//! Traffic shapes and the batch generator.
//!
//! A [`LoadGen`] turns a [`Population`] into batches of signed
//! mainchain transactions under a [`Shape`]:
//!
//! * [`Shape::Uniform`] — every user equally active, fees uniform in
//!   the configured range;
//! * [`Shape::Zipf`] — user activity follows a zipf law (rank-`r`
//!   user picked with weight `1/(r+1)^s`), the classic skew of real
//!   payment networks: a hot minority generates most traffic;
//! * [`Shape::FlashCrowd`] — a panic burst: everyone pays the base
//!   fee, except a configurable fraction that bids a surge multiple
//!   to jump the queue — the shape that exercises fee-prioritized
//!   eviction at capacity;
//! * [`Shape::DrainTheBridge`] — a rush across the bridge: users
//!   forward-transfer half their coin into one of the configured
//!   sidechains (valid [`ReceiverMetadata`], change kept), the shape
//!   that floods the registry/escrow path rather than plain payments.
//!
//! Batches are deterministic: the emitted sequence is a pure function
//! of the population seed, the shape and the settle/release history.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use zendoo_core::ids::{Amount, SidechainId};
use zendoo_core::transfer::ForwardTransfer;
use zendoo_latus::tx::ReceiverMetadata;
use zendoo_mainchain::transaction::{McTransaction, OutPoint, Output, TransferTx, TxOut};

use crate::population::{LoadConfig, PendingSpend, Population};

/// A traffic shape (see the module docs).
#[derive(Clone, Debug)]
pub enum Shape {
    /// Uniform user activity, uniform fees.
    Uniform,
    /// Zipf-distributed user activity with the given exponent
    /// (`1.0` is the classic harmonic skew; larger is hotter).
    Zipf {
        /// The zipf exponent `s` in `weight(rank) = 1/(rank+1)^s`.
        exponent: f64,
    },
    /// A panic burst: most transactions pay `fee_min`, but
    /// `surge_bp`/10000 of them bid `surge_multiplier ×` that to jump
    /// the queue.
    FlashCrowd {
        /// Fraction of surging transactions, in basis points.
        surge_bp: u32,
        /// Fee multiplier a surging transaction bids.
        surge_multiplier: u64,
    },
    /// A rush across the bridge: forward transfers of half each coin
    /// into a randomly chosen sidechain, with valid receiver
    /// metadata.
    DrainTheBridge {
        /// Declared sidechains to spread the rush across.
        sidechains: Vec<SidechainId>,
    },
}

/// A deterministic batch generator over a [`Population`].
///
/// # Examples
///
/// ```
/// use zendoo_loadgen::{LoadConfig, LoadGen, Population, Shape};
/// use zendoo_mainchain::chain::{Blockchain, ChainParams};
///
/// let config = LoadConfig { users: 50, ..LoadConfig::default() };
/// let mut population = Population::generate(&config);
/// let chain = Blockchain::new(ChainParams {
///     genesis_outputs: population.genesis_outputs(),
///     ..ChainParams::default()
/// });
/// population.bind_genesis(&chain, 0);
/// let mut gen = LoadGen::new(population, Shape::Uniform, &config);
/// let batch = gen.next_batch(20);
/// assert_eq!(batch.len(), 20);
/// ```
pub struct LoadGen {
    population: Population,
    shape: Shape,
    rng: StdRng,
    /// Cumulative zipf weights (empty unless [`Shape::Zipf`]): pick
    /// by binary search over a unit draw.
    zipf_cdf: Vec<f64>,
    fee_min: u64,
    fee_max: u64,
}

impl LoadGen {
    /// Binds a generator to a (genesis-bound) population. The zipf
    /// cumulative table, if any, is built once here.
    pub fn new(population: Population, shape: Shape, config: &LoadConfig) -> Self {
        let zipf_cdf = match &shape {
            Shape::Zipf { exponent } => {
                let mut acc = 0.0f64;
                let mut cdf = Vec::with_capacity(population.len());
                for rank in 0..population.len() {
                    acc += 1.0 / ((rank + 1) as f64).powf(*exponent);
                    cdf.push(acc);
                }
                cdf
            }
            _ => Vec::new(),
        };
        LoadGen {
            population,
            shape,
            rng: StdRng::seed_from_u64(config.seed ^ 0x6c6f_6164_6765_6e21),
            zipf_cdf,
            fee_min: config.fee_min.max(1),
            fee_max: config.fee_max.max(config.fee_min.max(1)),
        }
    }

    /// The backing population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Mutable access to the backing population (settle / release).
    pub fn population_mut(&mut self) -> &mut Population {
        &mut self.population
    }

    /// A uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks the next active user under the shape's activity
    /// distribution, then probes forward past users that are already
    /// in flight (or exhausted). Returns `None` when nobody can
    /// spend.
    fn pick_user(&mut self) -> Option<usize> {
        let n = self.population.len();
        if n == 0 {
            return None;
        }
        let start = match &self.shape {
            Shape::Zipf { .. } => {
                let total = *self.zipf_cdf.last().expect("non-empty population");
                let draw = self.unit() * total;
                self.zipf_cdf.partition_point(|&acc| acc <= draw).min(n - 1)
            }
            _ => self.rng.gen_range(0, n as u64) as usize,
        };
        (0..n)
            .map(|probe| (start + probe) % n)
            .find(|&index| self.population.available(index))
    }

    /// Draws the fee a transaction bids under the shape.
    fn draw_fee(&mut self) -> u64 {
        match &self.shape {
            Shape::FlashCrowd {
                surge_bp,
                surge_multiplier,
            } => {
                let (surge_bp, mult) = (*surge_bp, *surge_multiplier);
                let base = self.fee_min;
                if self.rng.gen_range(0, 10_000) < surge_bp as u64 {
                    base.saturating_mul(mult.max(1))
                } else {
                    base
                }
            }
            _ => {
                if self.fee_min == self.fee_max {
                    self.fee_min
                } else {
                    self.rng.gen_range(self.fee_min, self.fee_max + 1)
                }
            }
        }
    }

    /// Generates up to `n` signed transactions (fewer only when the
    /// whole population is in flight or exhausted). Each spends its
    /// user's confirmed coin; the user is then in flight until
    /// [`Population::settle`] sees the txid (or
    /// [`Population::release_unconfirmed`] resets it).
    pub fn next_batch(&mut self, n: usize) -> Vec<McTransaction> {
        let mut batch = Vec::with_capacity(n);
        for _ in 0..n {
            let Some(index) = self.pick_user() else { break };
            let fee = self.draw_fee();
            let sidechain = match &self.shape {
                Shape::DrainTheBridge { sidechains } if !sidechains.is_empty() => {
                    Some(sidechains[self.rng.gen_range(0, sidechains.len() as u64) as usize])
                }
                _ => None,
            };
            batch.push(self.build_spend(index, fee, sidechain));
        }
        batch
    }

    /// Builds and records user `index`'s next chain link: a self-pay
    /// (or, toward `sidechain`, a forward transfer of half the coin)
    /// bidding `fee`.
    fn build_spend(
        &mut self,
        index: usize,
        fee: u64,
        sidechain: Option<SidechainId>,
    ) -> McTransaction {
        let user = &self.population.users[index];
        let (outpoint, value) = user.coin.expect("picked user is funded");
        let address = user.wallet.address();
        // Never bid the whole coin: keep at least one unit so the
        // self-pay chain can continue.
        let fee = Amount::from_units(fee.min(value.units().saturating_sub(1)));
        let keep = value.checked_sub(fee).expect("fee below value");

        let (outputs, change) = match sidechain {
            Some(sidechain_id) => {
                let export = Amount::from_units(keep.units() / 2);
                let change = keep.checked_sub(export).expect("half of keep");
                let meta = ReceiverMetadata {
                    receiver: address,
                    payback: address,
                };
                (
                    vec![
                        Output::Forward(ForwardTransfer {
                            sidechain_id,
                            receiver_metadata: meta.to_bytes(),
                            amount: export,
                        }),
                        Output::Regular(TxOut::regular(address, change)),
                    ],
                    // The change UTXO sits after the forward output.
                    Some((1u32, change)),
                )
            }
            None => (
                vec![Output::Regular(TxOut::regular(address, keep))],
                Some((0u32, keep)),
            ),
        };

        let secret = &user.wallet.keypair().secret;
        let tx = McTransaction::Transfer(TransferTx::signed(&[(outpoint, secret)], outputs));
        let txid = tx.txid();
        let next = change
            .filter(|(_, amount)| !amount.is_zero())
            .map(|(output_index, amount)| {
                (
                    OutPoint {
                        txid,
                        index: output_index,
                    },
                    amount,
                )
            });
        self.population
            .mark_pending(index, PendingSpend { txid, next });
        tx
    }
}
