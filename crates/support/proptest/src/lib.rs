//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `any::<T>()`, integer-range and
//! tuple strategies, `collection::vec`, `prop_oneof!`/`prop_map`, the
//! `prop_assert*` macros and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; inputs are deterministic per test name, so a
//!   failure is reproducible by re-running the test.
//! * **Deterministic seeding.** Each generated test derives its RNG
//!   seed from `module_path!() :: test_name`, so runs are stable across
//!   executions and machines.

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// The deterministic generator behind every strategy sample.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from an arbitrary label (the test path).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix from there.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniformly random index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty range");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case is a genuine failure.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Boxes a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.index(self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// Integer types uniformly sampleable from a half-open range.
    pub trait SampleUniform: Copy {
        /// Draws from `[lo, hi)`.
        fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_range(self.start, self.end, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SampleUniform, Strategy};
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = usize::sample_range(self.size.start, self.size.end, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. See the crate docs for divergences from
/// real proptest (no shrinking; deterministic per-test seeding).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{} failed: {}", __case, msg)
                    }
                }
            }
        }
    )*};
}

/// `assert!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `assert_ne!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

/// Skips the current generated case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((0u8..10, 1u64..5), 0..6)
        ) {
            prop_assert!(pairs.len() < 6);
            for (a, b) in pairs {
                prop_assert!(a < 10);
                prop_assert!((1..5).contains(&b));
            }
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0u64..5).prop_map(|n| n * 2),
            (10u64..15).prop_map(|n| n),
        ]) {
            prop_assert!(v < 15);
            prop_assume!(v != 3); // odd value from the first arm is impossible
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
