//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds without network access, so the real crates.io
//! `serde` stack is unavailable. Nothing in this repository performs
//! actual serialization through serde (all wire formats go through the
//! in-repo `Encode` trait); the derives exist so type definitions keep
//! their familiar `#[derive(Serialize, Deserialize)]` shape. These
//! derives therefore expand to nothing: the types simply do not get
//! serde impls, and no code requires them to.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]`
/// helper attributes such as `#[serde(bound(...))]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
