//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace consumes: the
//! [`RngCore`]/[`Rng`] traits with `fill`, [`SeedableRng`] with
//! `seed_from_u64`, a deterministic [`rngs::StdRng`]
//! (SplitMix64-based) and a process-unique [`thread_rng`]. This is a
//! non-cryptographic generator: the workspace only uses it for test
//! vectors, key-generation *inputs* in examples, and simulation
//! randomness — never as a protocol security primitive.

/// Core random-number-generation operations.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Convenience extensions over [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    /// A uniformly random value in `[low, high)`.
    fn gen_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "gen_range requires low < high");
        low + self.next_u64() % (high - low)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator (stand-in for rand's
    /// `StdRng`; NOT cryptographically secure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// The generator returned by [`thread_rng`].
#[derive(Clone, Debug)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A process-local generator seeded once per call from a global
/// counter mixed with the process start time.
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5eed_5eed_5eed_5eed);
    let n = COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(n ^ t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_covers_non_multiple_lengths() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = rng.gen_range(5, 10);
            assert!((5..10).contains(&v));
        }
    }
}
