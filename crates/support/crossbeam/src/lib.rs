//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` API shape this workspace
//! uses, implemented directly on `std::thread::scope` (available since
//! Rust 1.63, which postdates crossbeam's scoped-thread design).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The result of a join (or of the scope itself): `Err` carries the
    /// panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the closure of [`scope`]. Unlike
    /// crossbeam's `&Scope`, the handle is passed by value (it is a
    /// `Copy` wrapper over a reference), which closure parameters like
    /// `|scope|` and `|_|` accept identically.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam convention), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this stand-in: panics from unjoined
    /// threads propagate out of `std::thread::scope` directly.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
