//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the minimal serde API surface its own code touches: the
//! `Serialize`/`Deserialize`/`Serializer`/`Deserializer` traits (used
//! by a handful of manual impls over byte representations) and the
//! no-op derive macros from the sibling `serde_derive` stand-in.
//!
//! The data model is deliberately byte-oriented: the only manual impls
//! in the workspace serialize to and from byte strings. Nothing in the
//! repository drives an actual serializer — canonical wire encoding
//! goes through the in-repo `Encode` trait instead.

pub use serde_derive::{Deserialize, Serialize};

/// A type that can serialize itself through a [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error type.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A byte-oriented serializer.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;

    /// Serializes a byte string.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;

    /// Serializes an unsigned 64-bit integer.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_bytes(&v.to_be_bytes())
    }
}

/// A type that can deserialize itself from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error type.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A byte-oriented deserializer.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Deserializes an owned byte string.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
}

/// Serialization error support.
pub mod ser {
    /// Errors a [`crate::Serializer`] may produce.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization error support.
pub mod de {
    /// Errors a [`crate::Deserializer`] may produce.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// A type deserializable independent of the input lifetime.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl Serialize for [u8] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<const N: usize> Serialize for [u8; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}
