//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! `Throughput`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — over a deliberately
//! small measurement core: a fixed warm-up iteration followed by a
//! capped sample loop, reporting mean wall-clock time per iteration.
//! No statistical analysis, HTML reports or outlier rejection.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-exported std hint).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How a benchmark's throughput is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on:
/// the stand-in always runs setup once per measured iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: `function[/parameter]`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only the parameter (the group supplies context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: u64,
    /// Mean time per iteration of the measured routine.
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up, then the sample loop.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples;
    }

    /// Measures `routine` over fresh inputs produced by `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iterations = self.samples;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            println!("{label:<50} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iterations);
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                " ({:.1} MiB/s)",
                (n as f64 * self.iterations as f64)
                    / (self.elapsed.as_secs_f64() * 1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => format!(
                " ({:.0} elem/s)",
                (n as f64 * self.iterations as f64) / self.elapsed.as_secs_f64()
            ),
        });
        println!(
            "{label:<50} {:>12} ns/iter{}",
            per_iter,
            rate.unwrap_or_default()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, self.criterion.max_samples);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&label, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    max_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the offline harness quick: benches exist to exercise the
        // hot paths and print indicative numbers, not to run a full
        // statistical campaign.
        Criterion { max_samples: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.max_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.max_samples);
        f(&mut bencher);
        bencher.report(name, None);
        self
    }
}

/// Declares a benchmark group function compatible with
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
