//! Latus sidechain parameters.

use serde::{Deserialize, Serialize};
use zendoo_core::ids::SidechainId;

/// Static parameters of one Latus deployment.
///
/// # Examples
///
/// ```
/// use zendoo_latus::params::LatusParams;
/// use zendoo_core::ids::SidechainId;
///
/// let params = LatusParams::new(SidechainId::from_label("app"), 16);
/// assert_eq!(params.mst_depth, 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LatusParams {
    /// The sidechain's registered `ledgerId`.
    pub sidechain_id: SidechainId,
    /// Depth of the Merkle State Tree (`D_MST`, §5.2).
    pub mst_depth: u32,
}

impl LatusParams {
    /// Creates parameters.
    pub fn new(sidechain_id: SidechainId, mst_depth: u32) -> Self {
        LatusParams {
            sidechain_id,
            mst_depth,
        }
    }
}
