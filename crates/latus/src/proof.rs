//! State-transition proofs (paper §5.4, Figs 10–11).
//!
//! [`LatusTransitionVerifier`] is the single-transition relation fed to
//! the recursive SNARK system (Def 2.5): given the pre/post state digests
//! and a [`TransitionWitness`], it re-derives the post digest from the
//! pre digest using only witnessed data — Merkle paths, signatures and
//! accumulator folds — mirroring what the production base circuit
//! constrains. [`EpochProofBuilder`] accumulates the per-transaction
//! witnesses of a withdrawal epoch and folds them into one constant-size
//! proof via the balanced merge tree of Fig 11.

use zendoo_core::ids::Address;
use zendoo_core::transfer::BackwardTransfer;
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::field::Fp;
use zendoo_snark::circuit::{gadget_cost, Unsatisfied};
use zendoo_snark::recursive::{RecursiveSystem, StateProof, TransitionVerifier};

use crate::mst::mst_position;
use crate::params::LatusParams;
use crate::state::{
    fold_backward_transfer, fold_delta_position, fold_sync, state_digest, SyncKind,
};
use crate::tx::{
    btr_claimed_utxo, classify_ft_metadata, empty_leaf, ft_batch_output_utxo, ft_output_utxo,
    salvage_payback, BtrStep, FtEntryStep, FtKind, FtStep, LeafUpdate, ScTransaction, SignedInput,
    TransitionWitness,
};

/// The Latus single-transition constraint system.
#[derive(Clone, Copy, Debug)]
pub struct LatusTransitionVerifier {
    params: LatusParams,
}

impl LatusTransitionVerifier {
    /// Creates the verifier for one Latus deployment.
    pub fn new(params: LatusParams) -> Self {
        LatusTransitionVerifier { params }
    }

    /// The deployment parameters.
    pub fn params(&self) -> &LatusParams {
        &self.params
    }
}

/// The proving system type for Latus state transitions.
pub type LatusProofSystem = RecursiveSystem<LatusTransitionVerifier>;

/// Bootstraps the recursive proving system for a deployment
/// (deterministic so that all nodes of a sidechain share keys).
pub fn proof_system(params: LatusParams, seed: &[u8]) -> LatusProofSystem {
    RecursiveSystem::new_deterministic(LatusTransitionVerifier::new(params), seed)
}

/// Running accumulator tuple during witness replay.
struct Replay {
    mst_root: Fp,
    bt_acc: Fp,
    delta_acc: Fp,
    sync_acc: Fp,
}

impl Replay {
    fn digest(&self) -> Fp {
        state_digest(self.mst_root, self.bt_acc, self.delta_acc, self.sync_acc)
    }

    /// Applies a leaf update, folding the delta accumulator.
    fn apply_update(&mut self, update: &LeafUpdate) -> Result<(), Unsatisfied> {
        self.mst_root = update.apply_to_root(&self.mst_root).ok_or_else(|| {
            Unsatisfied::new("latus/path", "leaf update path does not match running root")
        })?;
        self.delta_acc = fold_delta_position(self.delta_acc, update.position());
        Ok(())
    }

    fn append_bt(&mut self, receiver: Address, amount: zendoo_core::ids::Amount) {
        let bt = BackwardTransfer { receiver, amount };
        self.bt_acc = fold_backward_transfer(self.bt_acc, &bt);
    }
}

/// Checks one signed input: ownership, signature and the matching
/// removal update; advances the replay.
fn check_spend(
    replay: &mut Replay,
    input: &SignedInput,
    update: &LeafUpdate,
    sighash: &Digest32,
    depth: u32,
    index: usize,
) -> Result<(), Unsatisfied> {
    if !input.verify(sighash) {
        return Err(Unsatisfied::new(
            "latus/input-auth",
            format!("input {index} ownership/signature check failed"),
        ));
    }
    let expected_position = mst_position(&input.utxo, depth);
    if update.position() != expected_position {
        return Err(Unsatisfied::new(
            "latus/input-position",
            format!("input {index} update at wrong MST position"),
        ));
    }
    if update.old_leaf != Some(input.utxo.leaf()) || update.new_leaf.is_some() {
        return Err(Unsatisfied::new(
            "latus/input-leaf",
            format!("input {index} update is not a removal of the spent utxo"),
        ));
    }
    replay.apply_update(update)
}

/// Checks that a collision rejection's evidence proves `position`
/// occupied under the running root.
fn check_occupied_slot(
    replay: &Replay,
    position: u64,
    occupied: &zendoo_primitives::smt::SmtProof,
    occupied_leaf: &Fp,
    ft_index: usize,
) -> Result<(), Unsatisfied> {
    if occupied.index() != position {
        return Err(Unsatisfied::new(
            "latus/ft-collision-pos",
            format!("ft {ft_index}: collision proof at wrong position"),
        ));
    }
    if *occupied_leaf == empty_leaf() || occupied.compute_root(occupied_leaf) != replay.mst_root {
        return Err(Unsatisfied::new(
            "latus/ft-collision",
            format!("ft {ft_index}: slot not provably occupied"),
        ));
    }
    Ok(())
}

impl TransitionVerifier for LatusTransitionVerifier {
    type Witness = TransitionWitness;

    fn id(&self) -> Digest32 {
        Digest32::hash_tagged(
            "zendoo/latus-transition",
            &[
                self.params.sidechain_id.0.as_bytes(),
                &self.params.mst_depth.to_be_bytes(),
            ],
        )
    }

    fn verify_transition(
        &self,
        from: &Fp,
        to: &Fp,
        w: &TransitionWitness,
    ) -> Result<(), Unsatisfied> {
        let depth = self.params.mst_depth;
        let mut replay = Replay {
            mst_root: w.pre_mst_root,
            bt_acc: w.pre_bt_accumulator,
            delta_acc: w.pre_delta_accumulator,
            sync_acc: w.pre_sync_accumulator,
        };
        if *from != replay.digest() {
            return Err(Unsatisfied::new(
                "latus/from-digest",
                "pre-state digest does not match witnessed components",
            ));
        }

        match &w.tx {
            ScTransaction::Payment(tx) => {
                let sighash = tx.sighash();
                check_no_duplicate_inputs(&tx.inputs)?;
                check_value_balance(&tx.inputs, &tx.outputs, &[])?;
                if w.updates.len() != tx.inputs.len() + tx.outputs.len() {
                    return Err(Unsatisfied::new(
                        "latus/update-arity",
                        "payment update count mismatch",
                    ));
                }
                for (i, (input, update)) in tx.inputs.iter().zip(&w.updates).enumerate() {
                    check_spend(&mut replay, input, update, &sighash, depth, i)?;
                }
                for (output, update) in tx.outputs.iter().zip(&w.updates[tx.inputs.len()..]) {
                    if update.position() != mst_position(output, depth)
                        || update.old_leaf.is_some()
                        || update.new_leaf != Some(output.leaf())
                    {
                        return Err(Unsatisfied::new(
                            "latus/output-leaf",
                            "output update is not an insertion into an empty slot",
                        ));
                    }
                    replay.apply_update(update)?;
                }
            }
            ScTransaction::BackwardTransfer(tx) => {
                let sighash = tx.sighash();
                check_no_duplicate_inputs(&tx.inputs)?;
                check_value_balance(&tx.inputs, &[], &tx.backward_transfers)?;
                if w.updates.len() != tx.inputs.len() {
                    return Err(Unsatisfied::new(
                        "latus/update-arity",
                        "backward-transfer update count mismatch",
                    ));
                }
                for (i, (input, update)) in tx.inputs.iter().zip(&w.updates).enumerate() {
                    check_spend(&mut replay, input, update, &sighash, depth, i)?;
                }
                for bt in &tx.backward_transfers {
                    replay.append_bt(bt.receiver, bt.amount);
                }
            }
            ScTransaction::ForwardTransfers(tx) => {
                if !tx.binding.verify_forward_transfers(
                    &tx.mc_block,
                    &self.params.sidechain_id,
                    &tx.transfers,
                ) {
                    return Err(Unsatisfied::new(
                        "latus/ft-binding",
                        "forward transfers not bound to the MC block commitment",
                    ));
                }
                if w.ft_steps.len() != tx.transfers.len() {
                    return Err(Unsatisfied::new(
                        "latus/ft-arity",
                        "one step required per forward transfer",
                    ));
                }
                for (i, (ft, step)) in tx.transfers.iter().zip(&w.ft_steps).enumerate() {
                    // Classic 64-byte metadata, the tagged cross-chain
                    // form, or an aggregated settlement batch — the
                    // circuit mirrors the update semantics of
                    // `tx::apply_transaction` exactly via the shared
                    // classifier.
                    let kind = classify_ft_metadata(&self.params.sidechain_id, ft);
                    let single = match &kind {
                        FtKind::Classic { receiver, payback } => Some((*receiver, *payback)),
                        FtKind::Cross { meta } => Some((meta.receiver, meta.payback)),
                        FtKind::Settlement(_) | FtKind::Malformed => None,
                    };
                    match (&kind, single, step) {
                        (FtKind::Malformed, _, FtStep::RejectedMalformed) => {
                            // Mirrors `apply_forward_transfers`: a
                            // malformed FT refunds its full amount to
                            // the salvaged payback address. The circuit
                            // re-derives both, so a prover can neither
                            // redirect nor strand the refund.
                            replay.append_bt(salvage_payback(&ft.receiver_metadata), ft.amount);
                        }
                        (FtKind::Malformed, _, _) => {
                            return Err(Unsatisfied::new(
                                "latus/ft-malformed",
                                format!("ft {i}: malformed metadata must be rejected"),
                            ));
                        }
                        (_, Some((receiver, _)), FtStep::Minted(update)) => {
                            let utxo = ft_output_utxo(&tx.mc_block, i, receiver, ft.amount);
                            if update.position() != mst_position(&utxo, depth)
                                || update.old_leaf.is_some()
                                || update.new_leaf != Some(utxo.leaf())
                            {
                                return Err(Unsatisfied::new(
                                    "latus/ft-mint",
                                    format!("ft {i}: mint update malformed"),
                                ));
                            }
                            replay.apply_update(update)?;
                        }
                        (
                            _,
                            Some((receiver, payback)),
                            FtStep::RejectedCollision {
                                occupied,
                                occupied_leaf,
                            },
                        ) => {
                            let utxo = ft_output_utxo(&tx.mc_block, i, receiver, ft.amount);
                            check_occupied_slot(
                                &replay,
                                mst_position(&utxo, depth),
                                occupied,
                                occupied_leaf,
                                i,
                            )?;
                            replay.append_bt(payback, ft.amount);
                        }
                        (FtKind::Settlement(batch), _, FtStep::Settled(entry_steps)) => {
                            if entry_steps.len() != batch.transfers.len() {
                                return Err(Unsatisfied::new(
                                    "latus/ft-batch-arity",
                                    format!("ft {i}: one sub-step required per batch entry"),
                                ));
                            }
                            for (entry, (xct, entry_step)) in
                                batch.transfers.iter().zip(entry_steps).enumerate()
                            {
                                let utxo = ft_batch_output_utxo(
                                    &tx.mc_block,
                                    i,
                                    entry,
                                    xct.receiver,
                                    xct.amount,
                                );
                                match entry_step {
                                    FtEntryStep::Minted(update) => {
                                        if update.position() != mst_position(&utxo, depth)
                                            || update.old_leaf.is_some()
                                            || update.new_leaf != Some(utxo.leaf())
                                        {
                                            return Err(Unsatisfied::new(
                                                "latus/ft-batch-mint",
                                                format!(
                                                    "ft {i} entry {entry}: mint update malformed"
                                                ),
                                            ));
                                        }
                                        replay.apply_update(update)?;
                                    }
                                    FtEntryStep::RejectedCollision {
                                        occupied,
                                        occupied_leaf,
                                    } => {
                                        check_occupied_slot(
                                            &replay,
                                            mst_position(&utxo, depth),
                                            occupied,
                                            occupied_leaf,
                                            i,
                                        )?;
                                        replay.append_bt(xct.payback, xct.amount);
                                    }
                                }
                            }
                        }
                        (FtKind::Settlement(_), _, _) => {
                            return Err(Unsatisfied::new(
                                "latus/ft-batch",
                                format!("ft {i}: settlement batch requires settled sub-steps"),
                            ));
                        }
                        (_, Some(_), _) => {
                            return Err(Unsatisfied::new(
                                "latus/ft-skip",
                                format!("ft {i}: well-formed transfer cannot be skipped"),
                            ));
                        }
                        (_, None, _) => unreachable!("single is Some for classic/cross"),
                    }
                }
                replay.sync_acc =
                    fold_sync(replay.sync_acc, SyncKind::ForwardTransfers, &tx.mc_block);
            }
            ScTransaction::BackwardTransferRequests(tx) => {
                if !tx.binding.verify_backward_transfer_requests(
                    &tx.mc_block,
                    &self.params.sidechain_id,
                    &tx.requests,
                ) {
                    return Err(Unsatisfied::new(
                        "latus/btr-binding",
                        "BTRs not bound to the MC block commitment",
                    ));
                }
                if w.btr_steps.len() != tx.requests.len() {
                    return Err(Unsatisfied::new(
                        "latus/btr-arity",
                        "one step required per request",
                    ));
                }
                for (i, (request, step)) in tx.requests.iter().zip(&w.btr_steps).enumerate() {
                    let claim = btr_claimed_utxo(request).filter(|u| {
                        u.amount == request.amount && u.nullifier() == request.nullifier
                    });
                    match (claim, step) {
                        (None, BtrStep::RejectedMalformed) => {}
                        (None, _) => {
                            return Err(Unsatisfied::new(
                                "latus/btr-malformed",
                                format!("btr {i}: malformed request must be rejected"),
                            ));
                        }
                        (Some(utxo), BtrStep::Fulfilled(update)) => {
                            if update.position() != mst_position(&utxo, depth)
                                || update.old_leaf != Some(utxo.leaf())
                                || update.new_leaf.is_some()
                            {
                                return Err(Unsatisfied::new(
                                    "latus/btr-spend",
                                    format!("btr {i}: fulfilment update malformed"),
                                ));
                            }
                            replay.apply_update(update)?;
                            replay.append_bt(request.receiver, request.amount);
                        }
                        (Some(utxo), BtrStep::RejectedAbsent { path, found_leaf }) => {
                            let position = mst_position(&utxo, depth);
                            if path.index() != position {
                                return Err(Unsatisfied::new(
                                    "latus/btr-absent-pos",
                                    format!("btr {i}: absence proof at wrong position"),
                                ));
                            }
                            let found = found_leaf.unwrap_or_else(empty_leaf);
                            if path.compute_root(&found) != replay.mst_root {
                                return Err(Unsatisfied::new(
                                    "latus/btr-absent",
                                    format!("btr {i}: slot contents not proven"),
                                ));
                            }
                            if found == utxo.leaf() {
                                return Err(Unsatisfied::new(
                                    "latus/btr-censor",
                                    format!("btr {i}: claimed utxo IS present — cannot reject"),
                                ));
                            }
                        }
                        (Some(_), BtrStep::RejectedMalformed) => {
                            return Err(Unsatisfied::new(
                                "latus/btr-skip",
                                format!("btr {i}: valid request cannot be skipped as malformed"),
                            ));
                        }
                    }
                }
                replay.sync_acc = fold_sync(
                    replay.sync_acc,
                    SyncKind::BackwardTransferRequests,
                    &tx.mc_block,
                );
            }
        }

        if *to != replay.digest() {
            return Err(Unsatisfied::new(
                "latus/to-digest",
                "post-state digest does not match replayed transition",
            ));
        }
        Ok(())
    }

    fn transition_cost(&self, w: &TransitionWitness) -> u64 {
        let depth = self.params.mst_depth as u64;
        let per_path = depth * gadget_cost::MERKLE_STEP;
        let (sigs, paths, folds) = match &w.tx {
            ScTransaction::Payment(tx) => (
                tx.inputs.len() as u64,
                (tx.inputs.len() + tx.outputs.len()) as u64,
                0u64,
            ),
            ScTransaction::BackwardTransfer(tx) => (
                tx.inputs.len() as u64,
                tx.inputs.len() as u64,
                tx.backward_transfers.len() as u64,
            ),
            ScTransaction::ForwardTransfers(tx) => {
                // An aggregated settlement FT costs one path per entry.
                let paths: u64 = tx
                    .transfers
                    .iter()
                    .map(
                        |ft| match classify_ft_metadata(&self.params.sidechain_id, ft) {
                            FtKind::Settlement(batch) => batch.transfers.len() as u64,
                            _ => 1,
                        },
                    )
                    .sum();
                (0, paths, 2)
            }
            ScTransaction::BackwardTransferRequests(tx) => (0, tx.requests.len() as u64, 2),
        };
        sigs * gadget_cost::SCHNORR_VERIFY
            + paths * per_path
            + (folds + 4) * gadget_cost::POSEIDON_HASH2
    }
}

fn check_no_duplicate_inputs(inputs: &[SignedInput]) -> Result<(), Unsatisfied> {
    if inputs.is_empty() {
        return Err(Unsatisfied::new("latus/no-inputs", "spend without inputs"));
    }
    let mut seen = std::collections::HashSet::new();
    for input in inputs {
        if !seen.insert(input.utxo.digest()) {
            return Err(Unsatisfied::new(
                "latus/duplicate-input",
                "utxo spent twice in one transaction",
            ));
        }
    }
    Ok(())
}

fn check_value_balance(
    inputs: &[SignedInput],
    outputs: &[crate::mst::Utxo],
    withdrawals: &[BackwardTransfer],
) -> Result<(), Unsatisfied> {
    let total_in = zendoo_core::ids::Amount::checked_sum(inputs.iter().map(|i| i.utxo.amount))
        .ok_or_else(|| Unsatisfied::new("latus/overflow", "input overflow"))?;
    let out = zendoo_core::ids::Amount::checked_sum(outputs.iter().map(|o| o.amount))
        .ok_or_else(|| Unsatisfied::new("latus/overflow", "output overflow"))?;
    let wd = zendoo_core::ids::Amount::checked_sum(withdrawals.iter().map(|w| w.amount))
        .ok_or_else(|| Unsatisfied::new("latus/overflow", "withdrawal overflow"))?;
    let total_out = out
        .checked_add(wd)
        .ok_or_else(|| Unsatisfied::new("latus/overflow", "total output overflow"))?;
    if total_out > total_in {
        return Err(Unsatisfied::new(
            "latus/imbalance",
            format!("outputs {total_out} exceed inputs {total_in}"),
        ));
    }
    Ok(())
}

/// Accumulates a withdrawal epoch's transitions and proves them
/// (Fig 11: block-level and epoch-level composition collapse into one
/// balanced fold over all transitions of the epoch).
#[derive(Clone, Debug)]
pub struct EpochProofBuilder {
    states: Vec<Fp>,
    witnesses: Vec<TransitionWitness>,
}

impl EpochProofBuilder {
    /// Starts an epoch at `initial_digest` (the post-reset state digest).
    pub fn new(initial_digest: Fp) -> Self {
        EpochProofBuilder {
            states: vec![initial_digest],
            witnesses: Vec::new(),
        }
    }

    /// Records one applied transition and its post-state digest.
    pub fn record(&mut self, witness: TransitionWitness, post_digest: Fp) {
        self.states.push(post_digest);
        self.witnesses.push(witness);
    }

    /// Number of recorded transitions.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Returns `true` if no transition was recorded (empty epoch).
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// The initial state digest.
    pub fn initial_digest(&self) -> Fp {
        self.states[0]
    }

    /// The latest state digest.
    pub fn final_digest(&self) -> Fp {
        *self.states.last().expect("nonempty by construction")
    }

    /// Folds all transitions into one proof. Returns `None` for an empty
    /// epoch (the certificate circuit then checks digest equality
    /// directly).
    ///
    /// # Errors
    ///
    /// Propagates unsatisfied transitions from the proving system.
    pub fn prove(
        &self,
        system: &LatusProofSystem,
    ) -> Result<Option<StateProof>, zendoo_snark::backend::ProveError> {
        if self.witnesses.is_empty() {
            return Ok(None);
        }
        system.prove_chain(&self.states, &self.witnesses).map(Some)
    }

    /// Parallel variant of [`EpochProofBuilder::prove`] using `workers`
    /// concurrent lanes (the computational half of §5.4.1; see
    /// [`crate::prover_pool`] for the dispatch/reward half).
    ///
    /// # Errors
    ///
    /// Propagates unsatisfied transitions from the proving system.
    pub fn prove_parallel(
        &self,
        system: &LatusProofSystem,
        workers: usize,
    ) -> Result<Option<StateProof>, zendoo_snark::backend::ProveError> {
        if self.witnesses.is_empty() {
            return Ok(None);
        }
        let prover = zendoo_snark::parallel::ParallelProver::new(system, workers);
        prover
            .prove_chain(&self.states, &self.witnesses)
            .map(|(proof, _)| Some(proof))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SidechainState;
    use crate::tx::{apply_transaction, PaymentTx};
    use zendoo_core::ids::{Amount, SidechainId};
    use zendoo_primitives::schnorr::Keypair;

    fn params() -> LatusParams {
        LatusParams::new(SidechainId::from_label("sc"), 16)
    }

    fn system() -> LatusProofSystem {
        proof_system(params(), b"test")
    }

    fn funded(owner: &Keypair, amounts: &[u64]) -> (SidechainState, Vec<crate::mst::Utxo>) {
        let mut state = SidechainState::new(16);
        let address = Address::from_public_key(&owner.public);
        let utxos: Vec<crate::mst::Utxo> = amounts
            .iter()
            .enumerate()
            .map(|(i, a)| crate::mst::Utxo {
                address,
                amount: Amount::from_units(*a),
                nonce: Digest32::hash_bytes(&[i as u8]),
            })
            .collect();
        for u in &utxos {
            state.mst_mut().add(u).unwrap();
        }
        (state, utxos)
    }

    #[test]
    fn payment_transition_proves_and_verifies() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded(&alice, &[10]);
        let sys = system();
        let from = state.digest();
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(Address::from_label("bob"), Amount::from_units(10))],
        ));
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        let to = state.digest();
        let proof = sys.prove_base(from, to, &witness).unwrap();
        assert!(sys.verify(&proof));
    }

    #[test]
    fn wrong_post_digest_rejected() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded(&alice, &[10]);
        let sys = system();
        let from = state.digest();
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(Address::from_label("bob"), Amount::from_units(10))],
        ));
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        // Claim a different post state.
        let err = sys
            .prove_base(from, Fp::from_u64(12345), &witness)
            .unwrap_err();
        assert!(format!("{err}").contains("to-digest"));
    }

    #[test]
    fn tampered_witness_rejected() {
        let alice = Keypair::from_seed(b"alice");
        let mallory = Keypair::from_seed(b"mallory");
        let (mut state, utxos) = funded(&alice, &[10]);
        let sys = system();
        let from = state.digest();
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(Address::from_label("bob"), Amount::from_units(10))],
        ));
        let mut witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        let to = state.digest();
        // Swap the signature for Mallory's.
        if let ScTransaction::Payment(p) = &mut witness.tx {
            p.inputs[0].signature = mallory.secret.sign("zendoo/sc-sighash-v1", b"junk");
        }
        let err = sys.prove_base(from, to, &witness).unwrap_err();
        assert!(format!("{err}").contains("input-auth"), "{err}");
    }

    #[test]
    fn epoch_proof_over_multiple_transitions() {
        let alice = Keypair::from_seed(b"alice");
        let bob = Keypair::from_seed(b"bob");
        let (mut state, utxos) = funded(&alice, &[10, 20]);
        let sys = system();
        let mut builder = EpochProofBuilder::new(state.digest());

        // Alice pays Bob, Bob pays Carol.
        let tx1 = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(
                Address::from_public_key(&bob.public),
                Amount::from_units(10),
            )],
        ));
        let w1 = apply_transaction(&params(), &mut state, &tx1).unwrap();
        builder.record(w1, state.digest());

        let bob_utxo = state.mst().owned_by(&Address::from_public_key(&bob.public))[0].1;
        let tx2 = ScTransaction::Payment(PaymentTx::create(
            vec![(bob_utxo, &bob.secret)],
            vec![(Address::from_label("carol"), Amount::from_units(10))],
        ));
        let w2 = apply_transaction(&params(), &mut state, &tx2).unwrap();
        builder.record(w2, state.digest());

        assert_eq!(builder.len(), 2);
        let proof = builder.prove(&sys).unwrap().expect("nonempty epoch");
        assert!(sys.verify(&proof));
        assert_eq!(proof.from_state(), builder.initial_digest());
        assert_eq!(proof.to_state(), builder.final_digest());
    }

    #[test]
    fn empty_epoch_produces_no_proof() {
        let state = SidechainState::new(16);
        let builder = EpochProofBuilder::new(state.digest());
        assert!(builder.prove(&system()).unwrap().is_none());
        assert_eq!(builder.initial_digest(), builder.final_digest());
    }

    #[test]
    fn transition_cost_scales_with_inputs() {
        let alice = Keypair::from_seed(b"alice");
        let verifier = LatusTransitionVerifier::new(params());
        let (mut state, utxos) = funded(&alice, &[10, 20, 30]);
        let small = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(Address::from_label("b"), Amount::from_units(10))],
        ));
        let w_small = apply_transaction(&params(), &mut state, &small).unwrap();
        let big = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[1], &alice.secret), (utxos[2], &alice.secret)],
            vec![
                (Address::from_label("b"), Amount::from_units(25)),
                (Address::from_label("c"), Amount::from_units(25)),
            ],
        ));
        let w_big = apply_transaction(&params(), &mut state, &big).unwrap();
        assert!(verifier.transition_cost(&w_big) > verifier.transition_cost(&w_small));
    }
}
