//! Latus sidechain blocks and mainchain block references (paper §5.5.1,
//! Figs 6–7).
//!
//! A sidechain block carries zero or more [`McBlockReference`]s — each
//! wrapping one MC block's header together with the synchronized
//! [`ForwardTransfersTx`] and [`BtrTx`] halves — plus regular sidechain
//! transactions. References must be contiguous: a block may only
//! reference the MC block following the last referenced one.

use serde::{Deserialize, Serialize};
use zendoo_core::certificate::WithdrawalCertificate;
use zendoo_core::ids::SidechainId;
use zendoo_mainchain::transaction::{McTransaction, Output};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::encode::{digest, Encode};
use zendoo_primitives::field::Fp;
use zendoo_primitives::merkle::{MerkleTree, Sha256Hasher};
use zendoo_primitives::schnorr::PublicKey;
use zendoo_primitives::vrf::VrfProof;

use crate::params::LatusParams;
use crate::state::SidechainState;
use crate::tx::{
    apply_transaction, BtrTx, ForwardTransfersTx, McRefBinding, McRefEvidence, ScTransaction,
    TransitionWitness, TxError,
};

/// A reference to one mainchain block (§5.5.1's `MCBlockReference`),
/// carrying both synchronization halves. Either half may have an empty
/// list (with absence/membership evidence); the `wcert` field records a
/// certificate observed for this sidechain in the referenced block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct McBlockReference {
    /// The synchronized forward transfers (`forwardTransfers`).
    pub forward_transfers: ForwardTransfersTx,
    /// The synchronized backward transfer requests (`btRequests`).
    pub backward_transfer_requests: BtrTx,
    /// The withdrawal certificate for this sidechain carried by the MC
    /// block, if any (`wcert`), with its commitment membership proof —
    /// the inclusion evidence later certificates witness.
    pub wcert: Option<(
        WithdrawalCertificate,
        zendoo_core::commitment::ScMembershipProof,
    )>,
}

/// Failures when deriving a reference from a mainchain block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McRefError {
    /// The block's header commitment does not match its transactions —
    /// a malformed mainchain block.
    CommitmentMismatch,
    /// The commitment tree could not produce the needed proof.
    ProofUnavailable,
}

impl std::fmt::Display for McRefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McRefError::CommitmentMismatch => {
                write!(f, "MC block commitment does not match its transactions")
            }
            McRefError::ProofUnavailable => write!(f, "commitment proof unavailable"),
        }
    }
}

impl std::error::Error for McRefError {}

impl McBlockReference {
    /// Derives the reference for `sidechain_id` from a full MC block —
    /// the synchronization step of Fig 7: extract this sidechain's FTs,
    /// BTRs and certificate, with commitment evidence from the header.
    ///
    /// # Errors
    ///
    /// [`McRefError::CommitmentMismatch`] for malformed MC blocks.
    pub fn derive(
        mc_block: &zendoo_mainchain::Block,
        sidechain_id: &SidechainId,
    ) -> Result<Self, McRefError> {
        let commitment = zendoo_mainchain::Blockchain::build_commitment(&mc_block.transactions);
        if commitment.root() != mc_block.header.sc_txs_commitment {
            return Err(McRefError::CommitmentMismatch);
        }
        let block_hash = mc_block.hash();

        let mut fts = Vec::new();
        let mut btrs = Vec::new();
        let mut wcert = None;
        for tx in &mc_block.transactions {
            match tx {
                McTransaction::Transfer(t) => {
                    for output in &t.outputs {
                        if let Output::Forward(ft) = output {
                            if ft.sidechain_id == *sidechain_id {
                                fts.push(ft.clone());
                            }
                        }
                    }
                }
                McTransaction::Btr(btr) if btr.sidechain_id == *sidechain_id => {
                    btrs.push((**btr).clone());
                }
                McTransaction::Certificate(cert) if cert.sidechain_id == *sidechain_id => {
                    wcert = Some((**cert).clone());
                }
                _ => {}
            }
        }

        let membership = commitment.membership_proof(sidechain_id);
        let evidence = match membership.clone() {
            Some(proof) => McRefEvidence::Membership(proof),
            None => McRefEvidence::NoData(
                commitment
                    .absence_proof(sidechain_id)
                    .ok_or(McRefError::ProofUnavailable)?,
            ),
        };
        let binding = McRefBinding {
            header: mc_block.header,
            evidence,
        };
        let wcert = match (wcert, membership) {
            (Some(cert), Some(proof)) => Some((cert, proof)),
            _ => None,
        };
        Ok(McBlockReference {
            forward_transfers: ForwardTransfersTx {
                mc_block: block_hash,
                transfers: fts,
                binding: binding.clone(),
            },
            backward_transfer_requests: BtrTx {
                mc_block: block_hash,
                requests: btrs,
                binding,
            },
            wcert,
        })
    }

    /// The referenced MC block hash.
    pub fn mc_block_hash(&self) -> Digest32 {
        self.forward_transfers.mc_block
    }

    /// The referenced MC block header.
    pub fn mc_header(&self) -> &zendoo_mainchain::BlockHeader {
        &self.forward_transfers.binding.header
    }
}

/// A Latus block header.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScBlockHeader {
    /// Parent SC block hash (zero for the genesis block).
    pub parent: Digest32,
    /// Block height (genesis = 0).
    pub height: u64,
    /// The consensus slot this block was forged in.
    pub slot: u64,
    /// The forger's public key.
    pub forger: PublicKey,
    /// VRF proof of slot leadership (§5.1).
    pub vrf_proof: VrfProof,
    /// Merkle root over all contained transaction ids (sync + regular).
    pub tx_root: Digest32,
    /// Ordered MC block hashes referenced by this block.
    pub mc_ref_hashes: Vec<Digest32>,
    /// The state digest after applying this block.
    pub state_digest: Fp,
}

impl ScBlockHeader {
    /// The block hash.
    pub fn hash(&self) -> Digest32 {
        digest("zendoo/sc-block-header", self)
    }
}

impl Encode for ScBlockHeader {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.parent.encode_into(out);
        self.height.encode_into(out);
        self.slot.encode_into(out);
        self.forger.to_bytes().encode_into(out);
        self.vrf_proof.to_bytes().to_vec().encode_into(out);
        self.tx_root.encode_into(out);
        self.mc_ref_hashes.encode_into(out);
        self.state_digest.encode_into(out);
    }
}

/// A full Latus block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScBlock {
    /// The header.
    pub header: ScBlockHeader,
    /// Mainchain block references, contiguous and in MC order.
    pub mc_references: Vec<McBlockReference>,
    /// Regular sidechain transactions (payments, backward transfers).
    pub transactions: Vec<ScTransaction>,
}

impl ScBlock {
    /// The block hash.
    pub fn hash(&self) -> Digest32 {
        self.header.hash()
    }

    /// All transactions in application order: per reference FTTx then
    /// BTRTx, then regular transactions.
    pub fn ordered_transactions(&self) -> Vec<ScTransaction> {
        let mut txs = Vec::new();
        for reference in &self.mc_references {
            txs.push(ScTransaction::ForwardTransfers(
                reference.forward_transfers.clone(),
            ));
            txs.push(ScTransaction::BackwardTransferRequests(
                reference.backward_transfer_requests.clone(),
            ));
        }
        txs.extend(self.transactions.iter().cloned());
        txs
    }

    /// Computes the Merkle root over the ordered transaction ids.
    pub fn compute_tx_root(&self) -> Digest32 {
        let leaves: Vec<[u8; 32]> = self
            .ordered_transactions()
            .iter()
            .map(|tx| tx.txid().0)
            .collect();
        Digest32(MerkleTree::<Sha256Hasher>::from_leaves(leaves).root())
    }
}

/// Block application failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScBlockError {
    /// Header `tx_root` mismatch.
    TxRootMismatch,
    /// Header `mc_ref_hashes` does not match the body references.
    McRefHashMismatch,
    /// References are not contiguous with the previously referenced MC
    /// block (§5.1's ordering rule).
    NonContiguousReference {
        /// Expected parent of the next referenced MC block.
        expected_parent: Digest32,
        /// Actual parent hash.
        actual_parent: Digest32,
    },
    /// A transaction failed to apply.
    Tx(TxError),
    /// Header `state_digest` does not match the post-application state.
    StateDigestMismatch,
}

impl std::fmt::Display for ScBlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScBlockError::TxRootMismatch => write!(f, "tx root mismatch"),
            ScBlockError::McRefHashMismatch => write!(f, "mc reference hash list mismatch"),
            ScBlockError::NonContiguousReference {
                expected_parent,
                actual_parent,
            } => write!(
                f,
                "non-contiguous MC reference: expected parent {expected_parent}, got {actual_parent}"
            ),
            ScBlockError::Tx(e) => write!(f, "transaction failed: {e}"),
            ScBlockError::StateDigestMismatch => write!(f, "state digest mismatch"),
        }
    }
}

impl std::error::Error for ScBlockError {}

impl From<TxError> for ScBlockError {
    fn from(e: TxError) -> Self {
        ScBlockError::Tx(e)
    }
}

/// Applies a block to `state`, returning the transition witnesses in
/// order (for the epoch proof, Fig 10).
///
/// `last_referenced_mc` is the hash of the most recently referenced MC
/// block before this one (enforcing reference contiguity, §5.1).
///
/// # Errors
///
/// [`ScBlockError`]; the state may be partially mutated on error — the
/// caller (the node) applies to a scratch state first.
pub fn apply_block(
    params: &LatusParams,
    state: &mut SidechainState,
    block: &ScBlock,
    last_referenced_mc: Digest32,
) -> Result<Vec<TransitionWitness>, ScBlockError> {
    if block.compute_tx_root() != block.header.tx_root {
        return Err(ScBlockError::TxRootMismatch);
    }
    let body_hashes: Vec<Digest32> = block
        .mc_references
        .iter()
        .map(|r| r.mc_block_hash())
        .collect();
    if body_hashes != block.header.mc_ref_hashes {
        return Err(ScBlockError::McRefHashMismatch);
    }
    // Contiguity: each referenced MC block's parent must be the previous
    // referenced MC block.
    let mut expected_parent = last_referenced_mc;
    for reference in &block.mc_references {
        let actual_parent = reference.mc_header().parent;
        if actual_parent != expected_parent {
            return Err(ScBlockError::NonContiguousReference {
                expected_parent,
                actual_parent,
            });
        }
        expected_parent = reference.mc_block_hash();
    }

    let mut witnesses = Vec::new();
    for tx in block.ordered_transactions() {
        witnesses.push(apply_transaction(params, state, &tx)?);
    }
    if state.digest() != block.header.state_digest {
        return Err(ScBlockError::StateDigestMismatch);
    }
    Ok(witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_core::ids::Amount;
    use zendoo_mainchain::chain::{Blockchain, ChainParams};
    use zendoo_mainchain::transaction::TxOut;
    use zendoo_mainchain::wallet::Wallet;
    use zendoo_primitives::schnorr::Keypair;

    fn sid() -> SidechainId {
        SidechainId::from_label("sc")
    }

    fn chain_with_ft() -> (Blockchain, Wallet) {
        let alice = Wallet::from_seed(b"alice");
        let mut params = ChainParams::default();
        params.genesis_outputs = vec![TxOut::regular(alice.address(), Amount::from_units(10_000))];
        let mut chain = Blockchain::new(params);
        // Register the sidechain so the MC accepts FTs to it.
        struct AcceptAll;
        impl zendoo_snark::circuit::Circuit for AcceptAll {
            type Witness = ();
            fn id(&self) -> Digest32 {
                Digest32::hash_bytes(b"block-test/accept-all")
            }
            fn check(
                &self,
                _: &zendoo_snark::inputs::PublicInputs,
                _: &(),
            ) -> Result<(), zendoo_snark::circuit::Unsatisfied> {
                Ok(())
            }
        }
        let (_, vk) = zendoo_snark::backend::setup_deterministic(&AcceptAll, b"t");
        let config = zendoo_core::config::SidechainConfigBuilder::new(sid(), vk)
            .start_block(2)
            .epoch_len(10)
            .submit_len(3)
            .build()
            .unwrap();
        chain
            .mine_next_block(
                alice.address(),
                vec![McTransaction::SidechainDeclaration(Box::new(config))],
                0,
            )
            .unwrap();
        (chain, alice)
    }

    #[test]
    fn derive_reference_extracts_this_sidechains_data() {
        let (mut chain, alice) = chain_with_ft();
        let meta = crate::tx::ReceiverMetadata {
            receiver: zendoo_core::ids::Address::from_label("sc-alice"),
            payback: alice.address(),
        };
        let ft_tx = alice
            .forward_transfer(
                &chain,
                sid(),
                meta.to_bytes(),
                Amount::from_units(500),
                Amount::ZERO,
            )
            .unwrap();
        // Another sidechain's FT must not leak into our reference.
        let other_meta = crate::tx::ReceiverMetadata {
            receiver: zendoo_core::ids::Address::from_label("other"),
            payback: alice.address(),
        };
        let block = chain
            .mine_next_block(alice.address(), vec![ft_tx], 1)
            .unwrap();
        let _ = other_meta;

        let reference = McBlockReference::derive(&block, &sid()).unwrap();
        assert_eq!(reference.forward_transfers.transfers.len(), 1);
        assert_eq!(
            reference.forward_transfers.transfers[0].amount,
            Amount::from_units(500)
        );
        assert!(reference.backward_transfer_requests.requests.is_empty());
        assert!(reference.wcert.is_none());
        assert_eq!(reference.mc_block_hash(), block.hash());
    }

    #[test]
    fn derived_reference_applies_cleanly() {
        let (mut chain, alice) = chain_with_ft();
        let meta = crate::tx::ReceiverMetadata {
            receiver: zendoo_core::ids::Address::from_label("sc-alice"),
            payback: alice.address(),
        };
        let ft_tx = alice
            .forward_transfer(
                &chain,
                sid(),
                meta.to_bytes(),
                Amount::from_units(500),
                Amount::ZERO,
            )
            .unwrap();
        let block = chain
            .mine_next_block(alice.address(), vec![ft_tx], 1)
            .unwrap();
        let reference = McBlockReference::derive(&block, &sid()).unwrap();

        let params = LatusParams::new(sid(), 16);
        let mut state = SidechainState::new(16);
        let tx = ScTransaction::ForwardTransfers(reference.forward_transfers.clone());
        apply_transaction(&params, &mut state, &tx).unwrap();
        assert_eq!(
            state.balance_of(&zendoo_core::ids::Address::from_label("sc-alice")),
            Amount::from_units(500)
        );
    }

    fn empty_reference_for(chain: &mut Blockchain, miner: &Wallet) -> McBlockReference {
        let block = chain.mine_next_block(miner.address(), vec![], 7).unwrap();
        McBlockReference::derive(&block, &sid()).unwrap()
    }

    fn forge_test_block(
        params: &LatusParams,
        state: &mut SidechainState,
        parent: Digest32,
        height: u64,
        references: Vec<McBlockReference>,
        transactions: Vec<ScTransaction>,
    ) -> ScBlock {
        // Apply to compute the resulting digest.
        let mut scratch = state.clone();
        let mut block = ScBlock {
            header: ScBlockHeader {
                parent,
                height,
                slot: height,
                forger: Keypair::from_seed(b"forger").public,
                vrf_proof: zendoo_primitives::vrf::prove(
                    &Keypair::from_seed(b"forger").secret,
                    b"slot",
                )
                .1,
                tx_root: Digest32::ZERO,
                mc_ref_hashes: references.iter().map(|r| r.mc_block_hash()).collect(),
                state_digest: Fp::ZERO,
            },
            mc_references: references,
            transactions,
        };
        for tx in block.ordered_transactions() {
            apply_transaction(params, &mut scratch, &tx).unwrap();
        }
        block.header.tx_root = block.compute_tx_root();
        block.header.state_digest = scratch.digest();
        *state = scratch;
        block
    }

    #[test]
    fn apply_block_validates_and_produces_witnesses() {
        let (mut chain, alice) = chain_with_ft();
        let genesis_hash = chain.tip_hash();
        let params = LatusParams::new(sid(), 16);
        let mut forge_state = SidechainState::new(16);
        let reference = empty_reference_for(&mut chain, &alice);
        let block = forge_test_block(
            &params,
            &mut forge_state,
            Digest32::ZERO,
            0,
            vec![reference],
            vec![],
        );

        let mut state = SidechainState::new(16);
        let witnesses = apply_block(&params, &mut state, &block, genesis_hash).unwrap();
        assert_eq!(witnesses.len(), 2, "FTTx + BTRTx halves");
        assert_eq!(state.digest(), block.header.state_digest);
    }

    #[test]
    fn apply_block_rejects_non_contiguous_reference() {
        let (mut chain, alice) = chain_with_ft();
        let params = LatusParams::new(sid(), 16);
        let mut forge_state = SidechainState::new(16);
        let reference = empty_reference_for(&mut chain, &alice);
        let block = forge_test_block(
            &params,
            &mut forge_state,
            Digest32::ZERO,
            0,
            vec![reference],
            vec![],
        );
        let mut state = SidechainState::new(16);
        // Wrong predecessor: claim the reference follows a bogus block.
        let err = apply_block(
            &params,
            &mut state,
            &block,
            Digest32::hash_bytes(b"wrong-parent"),
        )
        .unwrap_err();
        assert!(matches!(err, ScBlockError::NonContiguousReference { .. }));
    }

    #[test]
    fn apply_block_rejects_wrong_state_digest() {
        let (mut chain, alice) = chain_with_ft();
        let genesis_hash = chain.tip_hash();
        let params = LatusParams::new(sid(), 16);
        let mut forge_state = SidechainState::new(16);
        let reference = empty_reference_for(&mut chain, &alice);
        let mut block = forge_test_block(
            &params,
            &mut forge_state,
            Digest32::ZERO,
            0,
            vec![reference],
            vec![],
        );
        block.header.state_digest = Fp::from_u64(99);
        block.header.tx_root = block.compute_tx_root();
        let mut state = SidechainState::new(16);
        let err = apply_block(&params, &mut state, &block, genesis_hash).unwrap_err();
        assert_eq!(err, ScBlockError::StateDigestMismatch);
    }

    #[test]
    fn ordered_transactions_interleave_sync_then_regular() {
        let (mut chain, alice) = chain_with_ft();
        let params = LatusParams::new(sid(), 16);
        let mut forge_state = SidechainState::new(16);
        let reference = empty_reference_for(&mut chain, &alice);
        let block = forge_test_block(
            &params,
            &mut forge_state,
            Digest32::ZERO,
            0,
            vec![reference],
            vec![],
        );
        let ordered = block.ordered_transactions();
        assert!(matches!(ordered[0], ScTransaction::ForwardTransfers(_)));
        assert!(matches!(
            ordered[1],
            ScTransaction::BackwardTransferRequests(_)
        ));
    }
}
