//! Ouroboros-style proof-of-stake consensus for Latus (paper §5.1).
//!
//! Time is divided into consensus epochs of `slots_per_epoch` slots. A
//! stakeholder is the leader of a slot when its VRF evaluation over
//! `(epoch_randomness ‖ slot)` falls below the stake-proportional
//! threshold `φ_f(α) = 1 − (1 − f)^α` (the Praos threshold, which makes
//! leadership probability independent of stake splitting).
//!
//! The stake distribution is snapshotted at the epoch boundary
//! ("the stake distribution SD is fixed before the epoch begins") and
//! the epoch randomness is derived from a hash chain seeded at genesis —
//! a simulated randomness beacon standing in for Ouroboros's VRF-output
//! folding (see DESIGN.md §3).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zendoo_core::ids::{Address, Amount};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::schnorr::{PublicKey, SecretKey};
use zendoo_primitives::vrf::{self, VrfOutput, VrfProof};

use crate::state::SidechainState;

/// Consensus parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsensusParams {
    /// Slots per consensus epoch (`k` in §5.1).
    pub slots_per_epoch: u64,
    /// The active-slots coefficient `f`: the fraction of slots expected
    /// to have at least one leader.
    pub active_slots_coeff: f64,
    /// Seed of the simulated randomness beacon.
    pub randomness_seed: Digest32,
    /// The bootstrap authority: a forger allowed to produce blocks
    /// regardless of stake. Real deployments distribute genesis stake
    /// instead; the authority keeps single-forger simulations honest
    /// about their trust model (documented in DESIGN.md §3).
    pub bootstrap_forger: Option<PublicKey>,
}

impl Default for ConsensusParams {
    fn default() -> Self {
        ConsensusParams {
            slots_per_epoch: 100,
            active_slots_coeff: 0.25,
            randomness_seed: Digest32::hash_bytes(b"zendoo/consensus-seed"),
            bootstrap_forger: None,
        }
    }
}

impl ConsensusParams {
    /// Default parameters with a bootstrap authority installed.
    pub fn with_bootstrap(forger: PublicKey) -> Self {
        ConsensusParams {
            bootstrap_forger: Some(forger),
            ..ConsensusParams::default()
        }
    }

    /// Returns `true` if `forger` is the bootstrap authority.
    pub fn is_bootstrap_forger(&self, forger: &PublicKey) -> bool {
        self.bootstrap_forger.as_ref() == Some(forger)
    }

    /// The consensus epoch containing `slot`.
    pub fn epoch_of_slot(&self, slot: u64) -> u64 {
        slot / self.slots_per_epoch
    }

    /// The first slot of a consensus epoch.
    pub fn first_slot(&self, epoch: u64) -> u64 {
        epoch * self.slots_per_epoch
    }

    /// The randomness `η_e` for a consensus epoch (hash-chained beacon).
    pub fn epoch_randomness(&self, epoch: u64) -> Digest32 {
        let mut eta = self.randomness_seed;
        for e in 0..=epoch {
            eta = Digest32::hash_tagged(
                "zendoo/epoch-randomness",
                &[eta.as_bytes(), &e.to_be_bytes()],
            );
        }
        eta
    }

    /// The Praos threshold `φ_f(α) = 1 − (1 − f)^α` for relative stake
    /// `alpha ∈ [0, 1]`.
    pub fn threshold(&self, alpha: f64) -> f64 {
        1.0 - (1.0 - self.active_slots_coeff).powf(alpha.clamp(0.0, 1.0))
    }
}

/// The stake distribution `SD_Ep` fixed before an epoch begins.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StakeDistribution {
    stakes: BTreeMap<Address, Amount>,
    total: Amount,
}

impl StakeDistribution {
    /// Snapshots the distribution from a sidechain state (stake = sum of
    /// held UTXOs per address).
    pub fn snapshot(state: &SidechainState) -> Self {
        let mut stakes: BTreeMap<Address, Amount> = BTreeMap::new();
        for (_, utxo) in state.mst().iter() {
            let entry = stakes.entry(utxo.address).or_insert(Amount::ZERO);
            *entry = entry
                .checked_add(utxo.amount)
                .expect("sidechain supply fits in u64");
        }
        let total =
            Amount::checked_sum(stakes.values().copied()).expect("sidechain supply fits in u64");
        StakeDistribution { stakes, total }
    }

    /// Builds a distribution from explicit entries (tests/bootstrap).
    pub fn from_entries<I: IntoIterator<Item = (Address, Amount)>>(entries: I) -> Self {
        let mut stakes = BTreeMap::new();
        for (address, amount) in entries {
            stakes.insert(address, amount);
        }
        let total = Amount::checked_sum(stakes.values().copied()).expect("stake total fits in u64");
        StakeDistribution { stakes, total }
    }

    /// The stake of one address.
    pub fn stake_of(&self, address: &Address) -> Amount {
        self.stakes.get(address).copied().unwrap_or(Amount::ZERO)
    }

    /// Total staked value.
    pub fn total(&self) -> Amount {
        self.total
    }

    /// Relative stake `α` of an address.
    pub fn relative_stake(&self, address: &Address) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.stake_of(address).units() as f64 / self.total.units() as f64
    }

    /// Number of distinct stakeholders.
    pub fn len(&self) -> usize {
        self.stakes.len()
    }

    /// Returns `true` if nobody holds stake.
    pub fn is_empty(&self) -> bool {
        self.stakes.is_empty()
    }
}

/// The VRF message for a slot.
fn slot_message(params: &ConsensusParams, slot: u64) -> Vec<u8> {
    let epoch = params.epoch_of_slot(slot);
    let eta = params.epoch_randomness(epoch);
    let mut msg = Vec::with_capacity(40);
    msg.extend_from_slice(eta.as_bytes());
    msg.extend_from_slice(&slot.to_be_bytes());
    msg
}

/// Evidence of slot leadership.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeadershipProof {
    /// The slot claimed.
    pub slot: u64,
    /// The VRF output (below the stakeholder's threshold).
    pub output: VrfOutput,
    /// The VRF proof.
    pub proof: VrfProof,
}

/// Evaluates the slot-leader lottery for a stakeholder
/// (the `Select` procedure of §5.1, evaluated locally and privately as
/// in Praos).
///
/// Returns `Some` when `VRF(sk, η ‖ slot) < φ_f(α)`.
pub fn try_lead_slot(
    params: &ConsensusParams,
    distribution: &StakeDistribution,
    sk: &SecretKey,
    slot: u64,
) -> Option<LeadershipProof> {
    let address = Address::from_public_key(&sk.public_key());
    let alpha = distribution.relative_stake(&address);
    if alpha <= 0.0 {
        return None;
    }
    let (output, proof) = vrf::prove(sk, &slot_message(params, slot));
    if output.as_unit_fraction() < params.threshold(alpha) {
        Some(LeadershipProof {
            slot,
            output,
            proof,
        })
    } else {
        None
    }
}

/// Verifies a leadership claim for `pk` at `slot` under the epoch's
/// distribution.
pub fn verify_leadership(
    params: &ConsensusParams,
    distribution: &StakeDistribution,
    pk: &PublicKey,
    claim: &LeadershipProof,
) -> bool {
    let address = Address::from_public_key(pk);
    let alpha = distribution.relative_stake(&address);
    if alpha <= 0.0 {
        return false;
    }
    let Some(output) = vrf::verify(pk, &slot_message(params, claim.slot), &claim.proof) else {
        return false;
    };
    output == claim.output && output.as_unit_fraction() < params.threshold(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_primitives::schnorr::Keypair;

    fn params() -> ConsensusParams {
        ConsensusParams::default()
    }

    fn two_party_distribution(a: &Keypair, b: &Keypair, sa: u64, sb: u64) -> StakeDistribution {
        StakeDistribution::from_entries([
            (Address::from_public_key(&a.public), Amount::from_units(sa)),
            (Address::from_public_key(&b.public), Amount::from_units(sb)),
        ])
    }

    #[test]
    fn threshold_monotone_in_stake() {
        let p = params();
        assert!(p.threshold(0.0) < p.threshold(0.1));
        assert!(p.threshold(0.1) < p.threshold(0.5));
        assert!(p.threshold(0.5) < p.threshold(1.0));
        assert!((p.threshold(1.0) - p.active_slots_coeff).abs() < 1e-9);
    }

    #[test]
    fn epoch_randomness_differs_per_epoch() {
        let p = params();
        assert_ne!(p.epoch_randomness(0), p.epoch_randomness(1));
        assert_eq!(p.epoch_randomness(3), p.epoch_randomness(3));
    }

    #[test]
    fn leadership_verifies_and_binds_slot() {
        let alice = Keypair::from_seed(b"alice");
        let bob = Keypair::from_seed(b"bob");
        let dist = two_party_distribution(&alice, &bob, 50, 50);
        let p = params();
        // Find a slot alice leads (f=0.25, α=0.5 ⇒ φ≈0.134; a few hundred
        // slots suffice).
        let mut found = None;
        for slot in 0..5_000 {
            if let Some(claim) = try_lead_slot(&p, &dist, &alice.secret, slot) {
                found = Some(claim);
                break;
            }
        }
        let claim = found.expect("alice leads some slot");
        assert!(verify_leadership(&p, &dist, &alice.public, &claim));
        // Bob cannot reuse alice's claim.
        assert!(!verify_leadership(&p, &dist, &bob.public, &claim));
        // A different slot invalidates the proof.
        let mut wrong_slot = claim.clone();
        wrong_slot.slot += 1;
        assert!(!verify_leadership(&p, &dist, &alice.public, &wrong_slot));
    }

    #[test]
    fn zero_stake_never_leads() {
        let alice = Keypair::from_seed(b"alice");
        let nobody = Keypair::from_seed(b"nobody");
        let dist = StakeDistribution::from_entries([(
            Address::from_public_key(&alice.public),
            Amount::from_units(100),
        )]);
        let p = params();
        for slot in 0..500 {
            assert!(try_lead_slot(&p, &dist, &nobody.secret, slot).is_none());
        }
    }

    #[test]
    fn leadership_frequency_tracks_stake() {
        // E7: leadership ∝ stake. Alice holds 75%, Bob 25%.
        let alice = Keypair::from_seed(b"alice");
        let bob = Keypair::from_seed(b"bob");
        let dist = two_party_distribution(&alice, &bob, 75, 25);
        let p = params();
        let slots = 4_000u64;
        let mut alice_leads = 0u32;
        let mut bob_leads = 0u32;
        for slot in 0..slots {
            if try_lead_slot(&p, &dist, &alice.secret, slot).is_some() {
                alice_leads += 1;
            }
            if try_lead_slot(&p, &dist, &bob.secret, slot).is_some() {
                bob_leads += 1;
            }
        }
        let ratio = alice_leads as f64 / bob_leads.max(1) as f64;
        // φ(0.75)/φ(0.25) ≈ 0.1941/0.0694 ≈ 2.80 — allow generous slack.
        assert!(
            (1.8..4.5).contains(&ratio),
            "alice {alice_leads}, bob {bob_leads}, ratio {ratio}"
        );
    }

    #[test]
    fn snapshot_from_state_counts_utxos() {
        let mut state = SidechainState::new(10);
        let alice = Address::from_label("alice");
        for i in 0..3u8 {
            state
                .mst_mut()
                .add(&crate::mst::Utxo {
                    address: alice,
                    amount: Amount::from_units(10),
                    nonce: Digest32::hash_bytes(&[i]),
                })
                .unwrap();
        }
        let dist = StakeDistribution::snapshot(&state);
        assert_eq!(dist.stake_of(&alice), Amount::from_units(30));
        assert_eq!(dist.total(), Amount::from_units(30));
        assert!((dist.relative_stake(&alice) - 1.0).abs() < 1e-12);
    }
}

/// Verifies the leadership embedded in a block header: the VRF proof
/// must be valid for `(η ‖ slot)` under the forger's key and its output
/// below the forger's stake threshold. Used by validating (non-forging)
/// nodes.
pub fn verify_block_leadership(
    params: &ConsensusParams,
    distribution: &StakeDistribution,
    forger: &PublicKey,
    slot: u64,
    proof: &VrfProof,
) -> bool {
    let address = Address::from_public_key(forger);
    let alpha = distribution.relative_stake(&address);
    if alpha <= 0.0 {
        return false;
    }
    match vrf::verify(forger, &slot_message(params, slot), proof) {
        Some(output) => output.as_unit_fraction() < params.threshold(alpha),
        None => false,
    }
}
