//! The certifier-committee baseline (the authors' earlier design,
//! arXiv:1812.05441, discussed in §1.1/§3.1 and compared against
//! throughout the paper).
//!
//! Withdrawal certificates are authorized by an m-of-n committee of
//! *certifiers* instead of a state-transition proof. Two forms are
//! provided:
//!
//! * [`CertifierCommittee::verify_native`] — the baseline as the
//!   original design would run it (the mainchain checks m signatures) —
//!   used by benchmark E3 to compare MC-side verification cost against
//!   the SNARK path;
//! * [`CertifierCircuit`] — the same rule packaged *as a sidechain
//!   SNARK circuit*, demonstrating the universality claim of §4.1: the
//!   certifier trust model is just another circuit behind the unified
//!   verifier interface.

use serde::{Deserialize, Serialize};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::encode::Encode;
use zendoo_primitives::schnorr::{PublicKey, SecretKey, Signature};
use zendoo_snark::circuit::{gadget_cost, Circuit, Unsatisfied};
use zendoo_snark::inputs::PublicInputs;

/// Signature context for certifier endorsements.
const CERTIFIER_CONTEXT: &str = "zendoo/certifier-endorsement";

/// An m-of-n certifier committee.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertifierCommittee {
    members: Vec<PublicKey>,
    threshold: usize,
}

impl CertifierCommittee {
    /// Creates a committee requiring `threshold` of `members`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or exceeds the member count.
    pub fn new(members: Vec<PublicKey>, threshold: usize) -> Self {
        assert!(
            threshold >= 1 && threshold <= members.len(),
            "threshold must be in 1..=members"
        );
        CertifierCommittee { members, threshold }
    }

    /// The member keys.
    pub fn members(&self) -> &[PublicKey] {
        &self.members
    }

    /// The endorsement threshold `m`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The message certifiers endorse for a given statement.
    pub fn endorsement_message(&self, statement: &PublicInputs) -> Digest32 {
        Digest32::hash_tagged("zendoo/certifier-statement", &[&statement.encoded()])
    }

    /// Produces one certifier's endorsement.
    pub fn endorse(
        &self,
        member_index: usize,
        sk: &SecretKey,
        statement: &PublicInputs,
    ) -> Endorsement {
        Endorsement {
            member_index: member_index as u32,
            signature: sk.sign(
                CERTIFIER_CONTEXT,
                self.endorsement_message(statement).as_bytes(),
            ),
        }
    }

    /// The baseline's native verification path: at least `threshold`
    /// valid endorsements from distinct members.
    pub fn verify_native(&self, statement: &PublicInputs, endorsements: &[Endorsement]) -> bool {
        let message = self.endorsement_message(statement);
        let mut seen = std::collections::HashSet::new();
        let mut valid = 0usize;
        for endorsement in endorsements {
            let index = endorsement.member_index as usize;
            let Some(member) = self.members.get(index) else {
                return false;
            };
            if !seen.insert(index) {
                return false; // duplicate endorsement
            }
            if !member.verify(
                CERTIFIER_CONTEXT,
                message.as_bytes(),
                &endorsement.signature,
            ) {
                return false;
            }
            valid += 1;
        }
        valid >= self.threshold
    }

    /// A digest identifying the committee (for circuit ids).
    pub fn digest(&self) -> Digest32 {
        let mut bytes = Vec::new();
        (self.threshold as u64).encode_into(&mut bytes);
        for member in &self.members {
            member.to_bytes().encode_into(&mut bytes);
        }
        Digest32::hash_tagged("zendoo/certifier-committee", &[&bytes])
    }
}

/// One certifier's signature over a certificate statement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endorsement {
    /// The member's index in the committee.
    pub member_index: u32,
    /// The Schnorr endorsement.
    pub signature: Signature,
}

/// The certifier model expressed as a CCTP circuit: the statement is
/// "at least m committee members signed these public inputs".
#[derive(Clone, Debug)]
pub struct CertifierCircuit {
    committee: CertifierCommittee,
}

impl CertifierCircuit {
    /// Wraps a committee as a circuit.
    pub fn new(committee: CertifierCommittee) -> Self {
        CertifierCircuit { committee }
    }

    /// The underlying committee.
    pub fn committee(&self) -> &CertifierCommittee {
        &self.committee
    }
}

impl Circuit for CertifierCircuit {
    type Witness = Vec<Endorsement>;

    fn id(&self) -> Digest32 {
        Digest32::hash_tagged(
            "zendoo/certifier-circuit",
            &[self.committee.digest().as_bytes()],
        )
    }

    fn check(&self, public: &PublicInputs, witness: &Vec<Endorsement>) -> Result<(), Unsatisfied> {
        if self.committee.verify_native(public, witness) {
            Ok(())
        } else {
            Err(Unsatisfied::new(
                "certifier/threshold",
                format!(
                    "fewer than {} valid distinct endorsements",
                    self.committee.threshold
                ),
            ))
        }
    }

    fn constraint_cost(&self, _public: &PublicInputs, witness: &Vec<Endorsement>) -> u64 {
        witness.len() as u64 * gadget_cost::SCHNORR_VERIFY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_primitives::schnorr::Keypair;
    use zendoo_snark::backend::{prove, setup_deterministic, verify};

    fn committee_of(n: usize, m: usize) -> (CertifierCommittee, Vec<Keypair>) {
        let keys: Vec<Keypair> = (0..n)
            .map(|i| Keypair::from_seed(format!("certifier-{i}").as_bytes()))
            .collect();
        let committee = CertifierCommittee::new(keys.iter().map(|k| k.public).collect(), m);
        (committee, keys)
    }

    fn statement() -> PublicInputs {
        let mut s = PublicInputs::new();
        s.push_u64(5).push_digest(&Digest32::hash_bytes(b"bt-root"));
        s
    }

    #[test]
    fn native_threshold_verification() {
        let (committee, keys) = committee_of(5, 3);
        let stmt = statement();
        let endorsements: Vec<Endorsement> = (0..3)
            .map(|i| committee.endorse(i, &keys[i].secret, &stmt))
            .collect();
        assert!(committee.verify_native(&stmt, &endorsements));
        assert!(!committee.verify_native(&stmt, &endorsements[..2]));
    }

    #[test]
    fn duplicate_endorsements_rejected() {
        let (committee, keys) = committee_of(5, 3);
        let stmt = statement();
        let e = committee.endorse(0, &keys[0].secret, &stmt);
        let dup = vec![e.clone(), e.clone(), e];
        assert!(!committee.verify_native(&stmt, &dup));
    }

    #[test]
    fn non_member_signature_rejected() {
        let (committee, keys) = committee_of(3, 2);
        let stranger = Keypair::from_seed(b"stranger");
        let stmt = statement();
        let endorsements = vec![
            committee.endorse(0, &keys[0].secret, &stmt),
            // Stranger signs claiming member index 1.
            committee.endorse(1, &stranger.secret, &stmt),
        ];
        assert!(!committee.verify_native(&stmt, &endorsements));
    }

    #[test]
    fn statement_binding() {
        let (committee, keys) = committee_of(3, 2);
        let stmt = statement();
        let endorsements: Vec<Endorsement> = (0..2)
            .map(|i| committee.endorse(i, &keys[i].secret, &stmt))
            .collect();
        let mut other = PublicInputs::new();
        other.push_u64(6);
        assert!(!committee.verify_native(&other, &endorsements));
    }

    #[test]
    fn certifier_circuit_through_unified_verifier() {
        // E13: the committee model runs behind the standard SNARK
        // interface — the mainchain cannot tell the difference.
        let (committee, keys) = committee_of(4, 3);
        let circuit = CertifierCircuit::new(committee.clone());
        let (pk, vk) = setup_deterministic(&circuit, b"committee");
        let stmt = statement();
        let endorsements: Vec<Endorsement> = (0..3)
            .map(|i| committee.endorse(i, &keys[i].secret, &stmt))
            .collect();
        let proof = prove(&pk, &circuit, &stmt, &endorsements).unwrap();
        assert!(verify(&vk, &stmt, &proof));
        // Below threshold: no proof can be produced.
        let too_few: Vec<Endorsement> = endorsements[..2].to_vec();
        assert!(prove(&pk, &circuit, &stmt, &too_few).is_err());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        let _ = CertifierCommittee::new(vec![Keypair::from_seed(b"x").public], 0);
    }
}
