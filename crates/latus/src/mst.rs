//! The Merkle State Tree (MST): Latus's UTXO accounting structure
//! (paper §5.2, Fig 9).
//!
//! The MST is a fixed-depth sparse Merkle tree whose leaves are UTXO
//! slots. `MST_Position(utxo)` deterministically assigns each UTXO a slot
//! independent of the current state; occupied slots hold the Poseidon
//! leaf of the UTXO, empty slots hold the `H(Null)` constant. Position
//! collisions are possible and surface as [`MstError::SlotCollision`] —
//! the forward-transfer failure mode of §5.3.2.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use zendoo_core::ids::{Address, Amount};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::encode::{digest, Encode};
use zendoo_primitives::field::Fp;
use zendoo_primitives::poseidon;
use zendoo_primitives::smt::{SmtError, SmtProof, SparseMerkleTree};

/// An unspent output on the Latus sidechain: `(addr, amount, nonce)`
/// (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Utxo {
    /// Owner address (hash of a Schnorr public key).
    pub address: Address,
    /// Held amount.
    pub amount: Amount,
    /// Unique identifier.
    pub nonce: Digest32,
}

impl Utxo {
    /// A byte-level digest of the UTXO (nullifier preimage).
    pub fn digest(&self) -> Digest32 {
        digest("zendoo/sc-utxo", self)
    }

    /// The Poseidon leaf stored in the MST for this UTXO.
    pub fn leaf(&self) -> Fp {
        let addr = Fp::from_be_bytes_reduced(self.address.0.as_bytes());
        let amount = Fp::from_u64(self.amount.units());
        let nonce = Fp::from_be_bytes_reduced(self.nonce.as_bytes());
        poseidon::hash_many(&[addr, amount, nonce])
    }

    /// The nullifier claimed by a BTR/CSW for this UTXO
    /// (§5.5.3.2: "nullifier is the hash of the utxo").
    pub fn nullifier(&self) -> zendoo_core::ids::Nullifier {
        zendoo_core::ids::Nullifier::from_utxo_digest(&self.digest())
    }
}

impl Encode for Utxo {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.address.encode_into(out);
        self.amount.encode_into(out);
        self.nonce.encode_into(out);
    }
}

/// `MST_Position`: the deterministic, state-independent slot of a UTXO
/// in a tree of the given depth (§5.2).
pub fn mst_position(utxo: &Utxo, depth: u32) -> u64 {
    let d = Digest32::hash_tagged("zendoo/mst-position", &[utxo.digest().as_bytes()]);
    let mut first = [0u8; 8];
    first.copy_from_slice(&d.as_bytes()[..8]);
    let raw = u64::from_be_bytes(first);
    if depth >= 64 {
        raw
    } else {
        raw & ((1u64 << depth) - 1)
    }
}

/// MST operation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MstError {
    /// `MST_Position` maps the new UTXO onto an occupied slot
    /// (the FT-failure collision case, §5.3.2).
    SlotCollision {
        /// The contested position.
        position: u64,
    },
    /// The UTXO being spent is not in the tree.
    UnknownUtxo(Digest32),
    /// Internal sparse-tree error (range violations).
    Tree(SmtError),
}

impl std::fmt::Display for MstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MstError::SlotCollision { position } => {
                write!(f, "MST slot {position} already occupied")
            }
            MstError::UnknownUtxo(d) => write!(f, "utxo {d} not in MST"),
            MstError::Tree(e) => write!(f, "sparse tree error: {e}"),
        }
    }
}

impl std::error::Error for MstError {}

impl From<SmtError> for MstError {
    fn from(e: SmtError) -> Self {
        MstError::Tree(e)
    }
}

/// The Merkle State Tree: sparse tree + UTXO payload storage.
///
/// # Examples
///
/// ```
/// use zendoo_latus::mst::{Mst, Utxo};
/// use zendoo_core::ids::{Address, Amount};
/// use zendoo_primitives::digest::Digest32;
///
/// let mut mst = Mst::new(8);
/// let utxo = Utxo {
///     address: Address::from_label("alice"),
///     amount: Amount::from_units(5),
///     nonce: Digest32::hash_bytes(b"n1"),
/// };
/// let pos = mst.add(&utxo).unwrap();
/// assert!(mst.contains(&utxo));
/// assert_eq!(mst.remove(&utxo).unwrap(), pos);
/// assert!(!mst.contains(&utxo));
/// ```
#[derive(Clone, Debug)]
pub struct Mst {
    tree: SparseMerkleTree,
    /// Payload per occupied position.
    utxos: HashMap<u64, Utxo>,
    /// Index from utxo digest to position.
    by_digest: HashMap<Digest32, u64>,
}

impl Mst {
    /// Creates an empty MST of the given depth (`D_MST`).
    pub fn new(depth: u32) -> Self {
        Mst {
            tree: SparseMerkleTree::new(depth),
            utxos: HashMap::new(),
            by_digest: HashMap::new(),
        }
    }

    /// The tree depth.
    pub fn depth(&self) -> u32 {
        self.tree.depth()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.utxos.len()
    }

    /// Returns `true` if no UTXO is stored.
    pub fn is_empty(&self) -> bool {
        self.utxos.is_empty()
    }

    /// The current MST root (`mst_t`).
    pub fn root(&self) -> Fp {
        self.tree.root()
    }

    /// Returns `true` if the exact UTXO is present.
    pub fn contains(&self, utxo: &Utxo) -> bool {
        self.by_digest.contains_key(&utxo.digest())
    }

    /// The UTXO at `position`, if occupied.
    pub fn utxo_at(&self, position: u64) -> Option<&Utxo> {
        self.utxos.get(&position)
    }

    /// The position of a stored UTXO.
    pub fn position_of(&self, utxo: &Utxo) -> Option<u64> {
        self.by_digest.get(&utxo.digest()).copied()
    }

    /// All UTXOs owned by `address`, sorted by position.
    pub fn owned_by(&self, address: &Address) -> Vec<(u64, Utxo)> {
        let mut owned: Vec<(u64, Utxo)> = self
            .utxos
            .iter()
            .filter(|(_, u)| u.address == *address)
            .map(|(p, u)| (*p, *u))
            .collect();
        owned.sort_by_key(|(p, _)| *p);
        owned
    }

    /// Total value held by `address`.
    pub fn balance_of(&self, address: &Address) -> Amount {
        Amount::checked_sum(
            self.utxos
                .values()
                .filter(|u| u.address == *address)
                .map(|u| u.amount),
        )
        .expect("sidechain supply fits in u64")
    }

    /// Total value of all stored UTXOs.
    pub fn total_value(&self) -> Amount {
        Amount::checked_sum(self.utxos.values().map(|u| u.amount))
            .expect("sidechain supply fits in u64")
    }

    /// Iterates over `(position, utxo)` in position order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Utxo)> {
        let mut positions: Vec<u64> = self.utxos.keys().copied().collect();
        positions.sort_unstable();
        positions
            .into_iter()
            .map(move |p| (p, self.utxos.get(&p).expect("key from map")))
    }

    /// Inserts a UTXO at its deterministic position, returning it.
    ///
    /// # Errors
    ///
    /// [`MstError::SlotCollision`] if the slot is taken.
    pub fn add(&mut self, utxo: &Utxo) -> Result<u64, MstError> {
        let position = mst_position(utxo, self.depth());
        if self.tree.is_occupied(position) {
            return Err(MstError::SlotCollision { position });
        }
        self.tree.insert(position, utxo.leaf())?;
        self.utxos.insert(position, *utxo);
        self.by_digest.insert(utxo.digest(), position);
        Ok(position)
    }

    /// Removes a stored UTXO, returning its position.
    ///
    /// # Errors
    ///
    /// [`MstError::UnknownUtxo`] if absent.
    pub fn remove(&mut self, utxo: &Utxo) -> Result<u64, MstError> {
        let digest = utxo.digest();
        let position = *self
            .by_digest
            .get(&digest)
            .ok_or(MstError::UnknownUtxo(digest))?;
        self.tree.remove(position)?;
        self.utxos.remove(&position);
        self.by_digest.remove(&digest);
        Ok(position)
    }

    /// Membership/absence proof for `position`.
    pub fn proof(&self, position: u64) -> SmtProof {
        self.tree.proof(position)
    }
}

/// The `mst_delta` bit vector of a withdrawal certificate
/// (§5.5.3.1, Appendix A): which MST leaves changed during an epoch.
///
/// Stored sparsely (set of touched positions) because production depths
/// make a dense bit vector infeasible; [`MstDelta::to_bit_string`]
/// renders the dense form for small trees (the Appendix A example).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MstDelta {
    depth: u32,
    touched: BTreeSet<u64>,
}

impl MstDelta {
    /// An empty delta for a tree of `depth`.
    pub fn new(depth: u32) -> Self {
        MstDelta {
            depth,
            touched: BTreeSet::new(),
        }
    }

    /// Records that `position` was modified.
    pub fn touch(&mut self, position: u64) {
        self.touched.insert(position);
    }

    /// Returns the bit for `position` (`true` = modified this epoch).
    pub fn bit(&self, position: u64) -> bool {
        self.touched.contains(&position)
    }

    /// Number of touched positions.
    pub fn count(&self) -> usize {
        self.touched.len()
    }

    /// The tree depth this delta describes.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Iterates over touched positions in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.touched.iter().copied()
    }

    /// Dense `0`/`1` rendering, leaf 0 first — usable only for small
    /// depths (Appendix A uses depth 3: `"11100001"`).
    ///
    /// # Panics
    ///
    /// Panics for depths above 20 (the dense form would be > 1M bits).
    pub fn to_bit_string(&self) -> String {
        assert!(self.depth <= 20, "dense rendering only for small trees");
        let capacity = 1u64 << self.depth;
        (0..capacity)
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }

    /// Digest committed into certificate proofdata.
    pub fn digest(&self) -> Digest32 {
        let positions: Vec<u64> = self.touched.iter().copied().collect();
        digest("zendoo/mst-delta", &(self.depth, positions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn utxo(owner: &str, amount: u64, nonce: &[u8]) -> Utxo {
        Utxo {
            address: Address::from_label(owner),
            amount: Amount::from_units(amount),
            nonce: Digest32::hash_bytes(nonce),
        }
    }

    #[test]
    fn position_is_deterministic_and_state_independent() {
        let u = utxo("a", 5, b"n");
        let p1 = mst_position(&u, 8);
        let p2 = mst_position(&u, 8);
        assert_eq!(p1, p2);
        assert!(p1 < 256);
        // Different depth truncates differently but deterministically.
        assert_eq!(mst_position(&u, 4), p1 & 0xf);
    }

    #[test]
    fn add_remove_roundtrip_with_proofs() {
        let mut mst = Mst::new(10);
        let empty_root = mst.root();
        let u = utxo("alice", 7, b"n1");
        let pos = mst.add(&u).unwrap();
        assert_ne!(mst.root(), empty_root);
        let proof = mst.proof(pos);
        assert!(proof.verify_occupied(&mst.root(), &u.leaf()));
        mst.remove(&u).unwrap();
        assert_eq!(mst.root(), empty_root);
        assert!(mst.proof(pos).verify_empty(&mst.root()));
    }

    #[test]
    fn collision_detected() {
        // Find two utxos colliding at depth 4 (16 slots — birthday easily).
        let mut mst = Mst::new(4);
        let mut occupied = std::collections::HashMap::new();
        let mut found = false;
        for i in 0u64..200 {
            let u = utxo("x", 1, &i.to_be_bytes());
            let pos = mst_position(&u, 4);
            if let Some(_prev) = occupied.get(&pos) {
                mst.add(occupied_utxo(&occupied, pos)).unwrap_or(0);
                let err = mst.add(&u).unwrap_err();
                assert_eq!(err, MstError::SlotCollision { position: pos });
                found = true;
                break;
            }
            occupied.insert(pos, u);
        }
        assert!(found, "collision must occur in 200 draws over 16 slots");

        fn occupied_utxo(map: &std::collections::HashMap<u64, Utxo>, pos: u64) -> &Utxo {
            map.get(&pos).unwrap()
        }
    }

    #[test]
    fn unknown_utxo_removal_rejected() {
        let mut mst = Mst::new(8);
        let u = utxo("a", 1, b"n");
        assert!(matches!(mst.remove(&u), Err(MstError::UnknownUtxo(_))));
    }

    #[test]
    fn balances_and_ownership() {
        let mut mst = Mst::new(12);
        mst.add(&utxo("alice", 5, b"1")).unwrap();
        mst.add(&utxo("alice", 7, b"2")).unwrap();
        mst.add(&utxo("bob", 11, b"3")).unwrap();
        assert_eq!(
            mst.balance_of(&Address::from_label("alice")),
            Amount::from_units(12)
        );
        assert_eq!(mst.owned_by(&Address::from_label("alice")).len(), 2);
        assert_eq!(mst.total_value(), Amount::from_units(23));
        assert_eq!(mst.len(), 3);
    }

    #[test]
    fn leaf_binds_all_fields() {
        let base = utxo("a", 5, b"n");
        assert_ne!(base.leaf(), utxo("b", 5, b"n").leaf());
        assert_ne!(base.leaf(), utxo("a", 6, b"n").leaf());
        assert_ne!(base.leaf(), utxo("a", 5, b"m").leaf());
    }

    #[test]
    fn delta_records_touches() {
        let mut delta = MstDelta::new(3);
        delta.touch(0);
        delta.touch(1);
        delta.touch(2);
        delta.touch(7);
        assert_eq!(delta.to_bit_string(), "11100001");
        assert_eq!(delta.count(), 4);
        assert!(delta.bit(7));
        assert!(!delta.bit(3));
    }

    #[test]
    fn delta_digest_binds_positions_and_depth() {
        let mut a = MstDelta::new(3);
        a.touch(1);
        let mut b = MstDelta::new(3);
        b.touch(2);
        let mut c = MstDelta::new(4);
        c.touch(1);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn nullifier_matches_core_derivation() {
        let u = utxo("a", 5, b"n");
        assert_eq!(
            u.nullifier(),
            zendoo_core::ids::Nullifier::from_utxo_digest(&u.digest())
        );
    }
}
