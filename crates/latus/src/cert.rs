//! The Latus certificate, BTR and CSW circuits (paper §5.5.3).
//!
//! * [`WcertCircuit`] — the withdrawal-certificate statement
//!   (§5.5.3.1's eight rules): verifies the SC header chain, the MC
//!   header chain and its complete referencing, the recursive
//!   state-transition proof, the backward-transfer list, the quality
//!   rule and the `mst_delta` binding.
//! * [`BtrCircuit`] — the backward-transfer-request statement
//!   (§5.5.3.2): the claimed UTXO is in the MST committed by the last
//!   certificate, spendable by the submitter.
//! * [`CswCircuit`] — the ceased-sidechain-withdrawal statement
//!   (§5.5.3.3), with an additional *historical ownership* mode that
//!   uses `mst_delta` chains to survive data-availability attacks
//!   (Appendix A).

use serde::{Deserialize, Serialize};
use zendoo_core::certificate::WithdrawalCertificate;
use zendoo_core::commitment::ScMembershipProof;
use zendoo_core::crosschain::{self, CrossChainTransfer};
use zendoo_core::epoch::EpochSchedule;
use zendoo_core::ids::{Address, Amount, EpochId, Nullifier};
use zendoo_core::proofdata::{ProofData, ProofDataElem, ProofDataSchema, ProofDataType};
use zendoo_core::transfer::{bt_list_root, BackwardTransfer};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::encode::Encode;
use zendoo_primitives::field::Fp;
use zendoo_primitives::schnorr::{PublicKey, SecretKey, Signature};
use zendoo_primitives::smt::SmtProof;
use zendoo_snark::circuit::{gadget_cost, Circuit, Unsatisfied};
use zendoo_snark::inputs::PublicInputs;
use zendoo_snark::recursive::{verify_state_proof, StateProof};
use zendoo_snark::VerifyingKey;

use crate::block::ScBlockHeader;
use crate::mst::{mst_position, Mst, MstDelta, Utxo};
use crate::params::LatusParams;
use crate::state::{
    bt_list_accumulator, delta_sequence_accumulator, epoch_start_digest, full_sync_accumulator,
    state_digest,
};

/// Builds the Latus certificate proofdata
/// (`proofdata = (H(SB_last), H(state[MST]), mst_delta, XCTList)`,
/// §5.5.3.1 extended with the declared cross-chain transfer list —
/// always present, encoding the empty list when the epoch declared no
/// transfers, so the schema stays fixed-arity).
pub fn wcert_proofdata(
    sc_last_block: Digest32,
    mst_root: Fp,
    delta: &MstDelta,
    declared: &[CrossChainTransfer],
) -> ProofData {
    ProofData(vec![
        ProofDataElem::Digest(sc_last_block),
        ProofDataElem::Field(mst_root),
        ProofDataElem::Digest(delta.digest()),
        ProofDataElem::Bytes(crosschain::encode_xct_list(declared)),
    ])
}

/// The schema declared for Latus certificates at sidechain creation.
pub fn wcert_proofdata_schema() -> ProofDataSchema {
    ProofDataSchema(vec![
        ProofDataType::Digest,
        ProofDataType::Field,
        ProofDataType::Digest,
        ProofDataType::Bytes,
    ])
}

/// Parses Latus certificate proofdata back into
/// `(sc_last_block, mst_root, delta_digest)`.
pub fn parse_wcert_proofdata(data: &ProofData) -> Option<(Digest32, Fp, Digest32)> {
    match (data.get(0)?, data.get(1)?, data.get(2)?) {
        (
            ProofDataElem::Digest(block),
            ProofDataElem::Field(root),
            ProofDataElem::Digest(delta),
        ) if data.len() == 4 => Some((*block, *root, *delta)),
        _ => None,
    }
}

/// Parses the declared cross-chain transfers out of Latus certificate
/// proofdata (element 3).
pub fn parse_wcert_declared(data: &ProofData) -> Option<Vec<CrossChainTransfer>> {
    match data.get(3)? {
        ProofDataElem::Bytes(bytes) => crosschain::decode_xct_list(bytes)?.ok(),
        _ => None,
    }
}

/// Builds the Latus BTR/CSW proofdata (`proofdata = {utxo}`, §5.5.3.2).
pub fn utxo_proofdata(utxo: &Utxo) -> ProofData {
    ProofData(vec![ProofDataElem::Bytes(utxo.encoded())])
}

/// The schema declared for Latus BTRs/CSWs.
pub fn utxo_proofdata_schema() -> ProofDataSchema {
    ProofDataSchema(vec![ProofDataType::Bytes])
}

/// Evidence that a certificate is committed in a specific MC block: the
/// header plus the commitment-subtree membership proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertInclusion {
    /// The certificate.
    pub certificate: WithdrawalCertificate,
    /// Header of the MC block carrying it.
    pub mc_header: zendoo_mainchain::BlockHeader,
    /// Commitment membership proof for the certificate.
    pub inclusion: ScMembershipProof,
}

impl CertInclusion {
    /// Verifies the inclusion claim for `sidechain_id`.
    pub fn verify(&self, sidechain_id: &zendoo_core::ids::SidechainId) -> bool {
        self.certificate.sidechain_id == *sidechain_id
            && self.inclusion.sidechain_id == *sidechain_id
            && self
                .inclusion
                .verify_certificate(&self.mc_header.sc_txs_commitment, Some(&self.certificate))
    }
}

/// Witness of the Latus withdrawal-certificate circuit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WcertWitness {
    /// The epoch being closed.
    pub epoch_id: EpochId,
    /// SC block headers of the epoch, in order.
    pub sc_headers: Vec<ScBlockHeader>,
    /// Hash of the last SC block of the previous epoch (zero for the
    /// sidechain's first block).
    pub prev_sc_block: Digest32,
    /// MC block headers of the epoch, in order (`epoch_len` of them).
    pub mc_headers: Vec<zendoo_mainchain::BlockHeader>,
    /// The recursive state-transition proof over the epoch.
    pub state_proof: Option<StateProof>,
    /// MST root at the end of the previous epoch.
    pub prev_mst_root: Fp,
    /// MST root at the end of this epoch.
    pub final_mst_root: Fp,
    /// The epoch's backward transfers (must match the certificate).
    pub bt_list: Vec<BackwardTransfer>,
    /// The epoch's `mst_delta`.
    pub delta: MstDelta,
    /// The ordered touch sequence behind the delta accumulator.
    pub touch_sequence: Vec<u64>,
    /// The previous certificate with inclusion evidence
    /// (`None` only for epoch 0).
    pub prev_cert: Option<CertInclusion>,
    /// Cross-chain transfers declared by this certificate; each must be
    /// escrow-paired with a backward transfer in `bt_list`.
    pub declared: Vec<CrossChainTransfer>,
}

/// The Latus withdrawal-certificate constraint system (§5.5.3.1).
#[derive(Clone, Debug)]
pub struct WcertCircuit {
    params: LatusParams,
    schedule: EpochSchedule,
    base_vk: VerifyingKey,
    merge_vk: VerifyingKey,
}

impl WcertCircuit {
    /// Creates the circuit for a deployment, embedding the recursive
    /// system's verification keys (so child proofs verify in-circuit).
    pub fn new(
        params: LatusParams,
        schedule: EpochSchedule,
        base_vk: VerifyingKey,
        merge_vk: VerifyingKey,
    ) -> Self {
        WcertCircuit {
            params,
            schedule,
            base_vk,
            merge_vk,
        }
    }
}

fn fail(rule: &'static str, detail: impl Into<String>) -> Unsatisfied {
    Unsatisfied::new(rule, detail)
}

impl Circuit for WcertCircuit {
    type Witness = WcertWitness;

    fn id(&self) -> Digest32 {
        Digest32::hash_tagged(
            "zendoo/latus-wcert-circuit",
            &[
                self.params.sidechain_id.0.as_bytes(),
                &self.params.mst_depth.to_be_bytes(),
                &self.schedule.epoch_len().to_be_bytes(),
                &self.schedule.submit_len().to_be_bytes(),
                self.base_vk.digest().as_bytes(),
                self.merge_vk.digest().as_bytes(),
            ],
        )
    }

    fn check(&self, public: &PublicInputs, w: &WcertWitness) -> Result<(), Unsatisfied> {
        // --- Parse the unified public input (wcert_sysdata ‖ MH(pd)).
        if public.len() != 9 {
            return Err(fail("wcert/arity", "expected 9 public inputs"));
        }
        let quality = public
            .get_u64(0)
            .ok_or_else(|| fail("wcert/quality", "quality not a u64"))?;
        let bt_root = public.get_digest(1).expect("len checked");
        let prev_mc_end = public.get_digest(3).expect("len checked");
        let mc_end = public.get_digest(5).expect("len checked");
        let proofdata_root = public.get_digest(7).expect("len checked");

        // --- MC header chain of the epoch (anchors rule 5).
        if w.mc_headers.len() != self.schedule.epoch_len() as usize {
            return Err(fail(
                "wcert/mc-count",
                format!(
                    "expected {} MC headers, got {}",
                    self.schedule.epoch_len(),
                    w.mc_headers.len()
                ),
            ));
        }
        if w.mc_headers[0].parent != prev_mc_end {
            return Err(fail(
                "wcert/mc-anchor",
                "first MC header does not follow H(B^{i-1}_last)",
            ));
        }
        let mut mc_hashes = Vec::with_capacity(w.mc_headers.len());
        for (k, header) in w.mc_headers.iter().enumerate() {
            if k > 0 && header.parent != mc_hashes[k - 1] {
                return Err(fail(
                    "wcert/mc-chain",
                    format!("MC header {k} breaks the chain"),
                ));
            }
            mc_hashes.push(header.hash());
        }
        if *mc_hashes.last().expect("nonempty") != mc_end {
            return Err(fail(
                "wcert/mc-end",
                "last MC header does not hash to H(B^i_last)",
            ));
        }

        // --- SC header chain (rules 1–2).
        if w.sc_headers.is_empty() {
            return Err(fail("wcert/sc-empty", "epoch contains no SC blocks"));
        }
        if w.sc_headers[0].parent != w.prev_sc_block {
            return Err(fail(
                "wcert/sc-anchor",
                "first SC header does not extend the previous epoch's last block",
            ));
        }
        for k in 1..w.sc_headers.len() {
            if w.sc_headers[k].parent != w.sc_headers[k - 1].hash() {
                return Err(fail(
                    "wcert/sc-chain",
                    format!("SC header {k} breaks the chain"),
                ));
            }
            if w.sc_headers[k].height != w.sc_headers[k - 1].height + 1 {
                return Err(fail("wcert/sc-height", "SC heights not consecutive"));
            }
        }
        let last_sc = w.sc_headers.last().expect("nonempty");

        // --- Rule 5: the SC chain references exactly the epoch's MC
        // blocks, in order.
        let referenced: Vec<Digest32> = w
            .sc_headers
            .iter()
            .flat_map(|h| h.mc_ref_hashes.iter().copied())
            .collect();
        if referenced != mc_hashes {
            return Err(fail(
                "wcert/mc-coverage",
                "SC chain does not reference the epoch's MC blocks exactly in order",
            ));
        }

        // --- Rule 7 (quality = height of SB_last).
        if quality != last_sc.height {
            return Err(fail(
                "wcert/quality",
                format!("quality {quality} != SB_last height {}", last_sc.height),
            ));
        }

        // --- Rule 6 (BT list binding).
        if bt_list_root(&w.bt_list) != bt_root {
            return Err(fail("wcert/bt-root", "MH(BTList) mismatch"));
        }

        // --- Rule 8 (mst_delta = set of touched positions).
        let touched: std::collections::BTreeSet<u64> = w.touch_sequence.iter().copied().collect();
        let declared: std::collections::BTreeSet<u64> = w.delta.iter().collect();
        if touched != declared {
            return Err(fail(
                "wcert/delta-set",
                "mst_delta does not equal the set of touched positions",
            ));
        }
        if w.delta.depth() != self.params.mst_depth {
            return Err(fail("wcert/delta-depth", "delta depth mismatch"));
        }

        // --- Rules 3–4: state transition.
        let start_digest = epoch_start_digest(w.prev_mst_root);
        let final_digest = state_digest(
            w.final_mst_root,
            bt_list_accumulator(&w.bt_list),
            delta_sequence_accumulator(&w.touch_sequence),
            full_sync_accumulator(&mc_hashes),
        );
        if last_sc.state_digest != final_digest {
            return Err(fail(
                "wcert/state-binding",
                "SB_last state digest does not match witnessed components",
            ));
        }
        match &w.state_proof {
            Some(proof) => {
                if proof.from_state() != start_digest || proof.to_state() != final_digest {
                    return Err(fail(
                        "wcert/transition-endpoints",
                        "state proof endpoints do not match the epoch",
                    ));
                }
                if !verify_state_proof(&self.base_vk, &self.merge_vk, proof) {
                    return Err(fail("wcert/transition-proof", "state proof invalid"));
                }
            }
            None => {
                if start_digest != final_digest {
                    return Err(fail(
                        "wcert/transition-missing",
                        "non-trivial epoch requires a state proof",
                    ));
                }
            }
        }

        // --- Cross-chain declaration rules: every declared transfer is
        // escrow-paired (equal amount, in order) inside the epoch's BT
        // list, names this sidechain as source, and carries a
        // field-consistent nullifier — so the certificate proof itself
        // guarantees declared value left the sidechain. The mainchain
        // re-validates the same pairing and, at maturity, mints each
        // escrow BT as an escrow-KIND UTXO tagged from the declaration
        // (zendoo_core::escrow) — the circuit and the consensus rule
        // check the same structure from opposite ends.
        for xct in &w.declared {
            if xct.source != self.params.sidechain_id {
                return Err(fail(
                    "wcert/xct-source",
                    "declared transfer has foreign source",
                ));
            }
            if !xct.nullifier_consistent() {
                return Err(fail(
                    "wcert/xct-nullifier",
                    "declared nullifier inconsistent",
                ));
            }
            if xct.dest == xct.source {
                return Err(fail("wcert/xct-dest", "self-directed cross-chain transfer"));
            }
        }
        if let Err(e) = crosschain::check_escrow_pairing(&w.declared, &w.bt_list) {
            return Err(fail("wcert/xct-escrow", e.to_string()));
        }

        // --- Proofdata binding
        // (H(SB_last), mst root, delta digest, declared transfers).
        let expected_proofdata =
            wcert_proofdata(last_sc.hash(), w.final_mst_root, &w.delta, &w.declared);
        if expected_proofdata.merkle_root() != proofdata_root {
            return Err(fail("wcert/proofdata", "MH(proofdata) mismatch"));
        }

        // --- Previous-state binding (rule 2 across epochs).
        match (&w.prev_cert, w.epoch_id) {
            (None, 0) => {
                let empty_root = Mst::new(self.params.mst_depth).root();
                if w.prev_mst_root != empty_root {
                    return Err(fail(
                        "wcert/genesis-state",
                        "epoch 0 must start from the empty MST",
                    ));
                }
                if w.prev_sc_block != Digest32::ZERO {
                    return Err(fail(
                        "wcert/genesis-parent",
                        "epoch 0 must start from the zero SC parent",
                    ));
                }
            }
            (None, _) => {
                return Err(fail(
                    "wcert/prev-cert-missing",
                    "epochs after 0 must witness the previous certificate",
                ));
            }
            (Some(evidence), epoch) => {
                if epoch == 0 {
                    return Err(fail(
                        "wcert/epoch0-cert",
                        "epoch 0 has no previous certificate",
                    ));
                }
                if evidence.certificate.epoch_id != epoch - 1 {
                    return Err(fail(
                        "wcert/prev-epoch",
                        "previous certificate closes the wrong epoch",
                    ));
                }
                if !evidence.verify(&self.params.sidechain_id) {
                    return Err(fail(
                        "wcert/prev-inclusion",
                        "previous certificate inclusion proof invalid",
                    ));
                }
                // The carrying MC block must be in this epoch's
                // submission window (its first submit_len blocks).
                let window = self.schedule.submit_len() as usize;
                let carried = w.mc_headers[..window.min(w.mc_headers.len())]
                    .iter()
                    .any(|h| h.hash() == evidence.mc_header.hash());
                if !carried {
                    return Err(fail(
                        "wcert/prev-window",
                        "previous certificate not carried by this epoch's submission window",
                    ));
                }
                let (prev_sc_last, prev_root, _) =
                    parse_wcert_proofdata(&evidence.certificate.proofdata).ok_or_else(|| {
                        fail("wcert/prev-proofdata", "previous proofdata unparseable")
                    })?;
                if prev_root != w.prev_mst_root {
                    return Err(fail(
                        "wcert/prev-root",
                        "previous certificate commits a different MST root",
                    ));
                }
                if prev_sc_last != w.prev_sc_block {
                    return Err(fail(
                        "wcert/prev-sc-block",
                        "SC chain does not extend the previously certified block",
                    ));
                }
            }
        }
        Ok(())
    }

    fn constraint_cost(&self, _public: &PublicInputs, w: &WcertWitness) -> u64 {
        let headers = (w.mc_headers.len() + w.sc_headers.len()) as u64;
        let folds = (w.bt_list.len() + w.touch_sequence.len() + w.mc_headers.len() * 2) as u64;
        gadget_cost::PROOF_VERIFY
            + headers * 2 * gadget_cost::POSEIDON_HASH2
            + folds * gadget_cost::POSEIDON_HASH2
            + self.params.mst_depth as u64 * gadget_cost::MERKLE_STEP
    }
}

/// Authorization message a UTXO owner signs for a BTR/CSW.
fn withdrawal_auth_message(
    domain: &str,
    utxo: &Utxo,
    receiver: &Address,
    anchor: &Digest32,
) -> Digest32 {
    Digest32::hash_tagged(
        "zendoo/withdrawal-auth",
        &[
            domain.as_bytes(),
            &utxo.encoded(),
            receiver.0.as_bytes(),
            anchor.as_bytes(),
        ],
    )
}

/// Signs the spending authorization for a BTR (context `"btr"`) or CSW
/// (context `"csw"`).
pub fn sign_withdrawal(
    domain: &str,
    sk: &SecretKey,
    utxo: &Utxo,
    receiver: &Address,
    anchor: &Digest32,
) -> Signature {
    let msg = withdrawal_auth_message(domain, utxo, receiver, anchor);
    sk.sign("zendoo/withdrawal", msg.as_bytes())
}

/// Witness proving ownership of a UTXO in the state committed by a
/// specific certificate (the core of both BTR and CSW, §5.5.3.2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OwnershipWitness {
    /// The claimed UTXO.
    pub utxo: Utxo,
    /// The owner's public key.
    pub owner: PublicKey,
    /// Signature authorizing this withdrawal.
    pub authorization: Signature,
    /// Membership path of the UTXO in the committed MST.
    pub mst_proof: SmtProof,
    /// The committing certificate, with MC inclusion evidence.
    pub anchor_cert: CertInclusion,
}

impl OwnershipWitness {
    /// Shared checks for BTR/CSW: anchoring, membership, ownership and
    /// the public-input bindings.
    fn check(
        &self,
        domain: &str,
        params: &LatusParams,
        public: &PublicInputs,
    ) -> Result<(), Unsatisfied> {
        if public.len() != 9 {
            return Err(fail("btr/arity", "expected 9 public inputs"));
        }
        let anchor_block = public.get_digest(0).expect("len checked");
        let nullifier = Nullifier(public.get_digest(2).expect("len checked"));
        let receiver = Address(public.get_digest(4).expect("len checked"));
        let amount = Amount::from_units(
            public
                .get_u64(6)
                .ok_or_else(|| fail("btr/amount", "amount not a u64"))?,
        );
        let proofdata_root = public.get_digest(7).expect("len checked");

        // H(B_w): the anchor certificate's MC block is the public anchor.
        if self.anchor_cert.mc_header.hash() != anchor_block {
            return Err(fail(
                "btr/anchor",
                "certificate block does not match H(B_w)",
            ));
        }
        if !self.anchor_cert.verify(&params.sidechain_id) {
            return Err(fail("btr/cert-inclusion", "certificate inclusion invalid"));
        }
        let (_, mst_root, _) = parse_wcert_proofdata(&self.anchor_cert.certificate.proofdata)
            .ok_or_else(|| fail("btr/cert-proofdata", "certificate proofdata unparseable"))?;

        // utxo ∈ state_w[MST].
        let position = mst_position(&self.utxo, params.mst_depth);
        if self.mst_proof.index() != position {
            return Err(fail(
                "btr/position",
                "membership proof at wrong MST position",
            ));
        }
        if !self.mst_proof.verify_occupied(&mst_root, &self.utxo.leaf()) {
            return Err(fail("btr/membership", "utxo not in the committed MST"));
        }

        // Ownership: the signer controls the utxo's address.
        if Address::from_public_key(&self.owner) != self.utxo.address {
            return Err(fail("btr/owner", "public key does not control the utxo"));
        }
        let msg = withdrawal_auth_message(domain, &self.utxo, &receiver, &anchor_block);
        if !self
            .owner
            .verify("zendoo/withdrawal", msg.as_bytes(), &self.authorization)
        {
            return Err(fail("btr/signature", "authorization signature invalid"));
        }

        // Public bindings: amount, nullifier, proofdata.
        if amount != self.utxo.amount {
            return Err(fail("btr/amount", "amount does not equal utxo.amount"));
        }
        if nullifier != self.utxo.nullifier() {
            return Err(fail("btr/nullifier", "nullifier is not H(utxo)"));
        }
        if utxo_proofdata(&self.utxo).merkle_root() != proofdata_root {
            return Err(fail("btr/proofdata", "MH(proofdata) mismatch"));
        }
        Ok(())
    }
}

/// The Latus BTR circuit (§5.5.3.2).
#[derive(Clone, Debug)]
pub struct BtrCircuit {
    params: LatusParams,
}

impl BtrCircuit {
    /// Creates the circuit for a deployment.
    pub fn new(params: LatusParams) -> Self {
        BtrCircuit { params }
    }
}

impl Circuit for BtrCircuit {
    type Witness = OwnershipWitness;

    fn id(&self) -> Digest32 {
        Digest32::hash_tagged(
            "zendoo/latus-btr-circuit",
            &[
                self.params.sidechain_id.0.as_bytes(),
                &self.params.mst_depth.to_be_bytes(),
            ],
        )
    }

    fn check(&self, public: &PublicInputs, w: &OwnershipWitness) -> Result<(), Unsatisfied> {
        w.check("btr", &self.params, public)
    }

    fn constraint_cost(&self, _public: &PublicInputs, _w: &OwnershipWitness) -> u64 {
        gadget_cost::SCHNORR_VERIFY
            + self.params.mst_depth as u64 * gadget_cost::MERKLE_STEP
            + 8 * gadget_cost::POSEIDON_HASH2
    }
}

/// One later certificate in a historical-ownership chain, witnessing its
/// full `mst_delta`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaLink {
    /// The certificate (with inclusion evidence).
    pub cert: CertInclusion,
    /// The full delta committed by that certificate.
    pub delta: MstDelta,
}

/// Witness of the CSW circuit (§5.5.3.3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CswWitness {
    /// Ownership in the *latest* certificate's state (the common case).
    Direct(OwnershipWitness),
    /// Ownership proven against an older certificate plus a chain of
    /// `mst_delta`s showing the slot untouched since (Appendix A — the
    /// data-availability-attack escape hatch).
    Historical {
        /// Ownership at the older anchor certificate.
        base: OwnershipWitness,
        /// The certificates between the anchor (exclusive) and the
        /// latest (inclusive), in epoch order, each with its delta.
        later: Vec<DeltaLink>,
    },
}

/// The Latus CSW circuit (§5.5.3.3).
#[derive(Clone, Debug)]
pub struct CswCircuit {
    params: LatusParams,
}

impl CswCircuit {
    /// Creates the circuit for a deployment.
    pub fn new(params: LatusParams) -> Self {
        CswCircuit { params }
    }
}

impl Circuit for CswCircuit {
    type Witness = CswWitness;

    fn id(&self) -> Digest32 {
        Digest32::hash_tagged(
            "zendoo/latus-csw-circuit",
            &[
                self.params.sidechain_id.0.as_bytes(),
                &self.params.mst_depth.to_be_bytes(),
            ],
        )
    }

    fn check(&self, public: &PublicInputs, w: &CswWitness) -> Result<(), Unsatisfied> {
        match w {
            CswWitness::Direct(ownership) => ownership.check("csw", &self.params, public),
            CswWitness::Historical { base, later } => {
                if later.is_empty() {
                    return Err(fail("csw/historical-empty", "historical mode needs links"));
                }
                // Check ownership at the old anchor, but against the
                // public H(B_w) of the *latest* certificate: temporarily
                // rebuild the public inputs with the old anchor block.
                let latest = later.last().expect("nonempty");
                let anchor_block = public
                    .get_digest(0)
                    .ok_or_else(|| fail("csw/arity", "expected 9 public inputs"))?;
                if latest.cert.mc_header.hash() != anchor_block {
                    return Err(fail(
                        "csw/anchor",
                        "latest certificate block does not match H(B_w)",
                    ));
                }
                let mut base_public = public.clone();
                // Rebuild element 0..2 with the base cert's block hash.
                let mut elems: Vec<Fp> = base_public.elements().to_vec();
                let mut replacement = PublicInputs::new();
                replacement.push_digest(&base.anchor_cert.mc_header.hash());
                elems[0] = replacement.elements()[0];
                elems[1] = replacement.elements()[1];
                base_public = PublicInputs::from_elements(elems);
                base.check("csw", &self.params, &base_public)?;

                // The delta chain: consecutive epochs, valid inclusions,
                // untouched position throughout.
                let position = mst_position(&base.utxo, self.params.mst_depth);
                let mut previous_epoch = base.anchor_cert.certificate.epoch_id;
                for (k, link) in later.iter().enumerate() {
                    if link.cert.certificate.epoch_id != previous_epoch + 1 {
                        return Err(fail("csw/epoch-gap", format!("link {k} skips epochs")));
                    }
                    if !link.cert.verify(&self.params.sidechain_id) {
                        return Err(fail(
                            "csw/link-inclusion",
                            format!("link {k} inclusion invalid"),
                        ));
                    }
                    let (_, _, delta_digest) = parse_wcert_proofdata(
                        &link.cert.certificate.proofdata,
                    )
                    .ok_or_else(|| fail("csw/link-proofdata", format!("link {k} proofdata bad")))?;
                    if link.delta.digest() != delta_digest {
                        return Err(fail(
                            "csw/link-delta",
                            format!("link {k} delta does not match its certificate"),
                        ));
                    }
                    if link.delta.bit(position) {
                        return Err(fail(
                            "csw/spent",
                            format!("slot touched in epoch {}", link.cert.certificate.epoch_id),
                        ));
                    }
                    previous_epoch = link.cert.certificate.epoch_id;
                }
                Ok(())
            }
        }
    }

    fn constraint_cost(&self, _public: &PublicInputs, w: &CswWitness) -> u64 {
        let links = match w {
            CswWitness::Direct(_) => 0u64,
            CswWitness::Historical { later, .. } => later.len() as u64,
        };
        gadget_cost::SCHNORR_VERIFY
            + self.params.mst_depth as u64 * gadget_cost::MERKLE_STEP
            + (links + 8) * gadget_cost::POSEIDON_HASH2
    }
}
