//! The Latus transactional model (paper §5.3): payments, backward
//! transfers, synchronized forward transfers and synchronized backward
//! transfer requests — plus their `update` semantics over the sidechain
//! state and the transition witnesses consumed by the state-transition
//! circuits (§5.4).
//!
//! Application is atomic: every rule is checked on a *plan* before any
//! mutation happens, then the plan executes. The plan doubles as the
//! base-proof witness: a sequence of single-leaf MST updates, each
//! carrying the Merkle path valid at its point in the sequence — exactly
//! the form a real circuit would witness.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use zendoo_core::ids::{Address, Amount};
use zendoo_core::transfer::{BackwardTransfer, ForwardTransfer};
use zendoo_core::withdrawal::BackwardTransferRequest;
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::encode::{digest, Encode};
use zendoo_primitives::field::Fp;
use zendoo_primitives::merkle::{MerkleHasher, PoseidonHasher};
use zendoo_primitives::schnorr::{PublicKey, SecretKey, Signature};
use zendoo_primitives::smt::SmtProof;

use crate::mst::{mst_position, Utxo};
use crate::state::SidechainState;

/// Signature context for sidechain transactions.
const SC_SIGHASH_CONTEXT: &str = "zendoo/sc-sighash-v1";

/// The empty-slot leaf constant.
pub fn empty_leaf() -> Fp {
    PoseidonHasher::empty()
}

/// One single-leaf MST mutation with its authentication path.
///
/// `path` is valid against the tree root *before* this update; applying
/// the update replaces `old_leaf` with `new_leaf` at `path`'s position
/// and yields the next root. `None` denotes the empty slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafUpdate {
    /// Merkle path (and position) of the touched slot.
    pub path: SmtProof,
    /// Leaf before (`None` = empty).
    pub old_leaf: Option<Fp>,
    /// Leaf after (`None` = empty).
    pub new_leaf: Option<Fp>,
}

impl LeafUpdate {
    /// The touched position.
    pub fn position(&self) -> u64 {
        self.path.index()
    }

    /// Verifies the pre-image against `root` and returns the post-root.
    ///
    /// Returns `None` if the path does not authenticate `old_leaf` under
    /// `root`.
    pub fn apply_to_root(&self, root: &Fp) -> Option<Fp> {
        let old = self.old_leaf.unwrap_or_else(empty_leaf);
        if self.path.compute_root(&old) != *root {
            return None;
        }
        let new = self.new_leaf.unwrap_or_else(empty_leaf);
        Some(self.path.compute_root(&new))
    }
}

/// A signed transaction input.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedInput {
    /// The spent UTXO (full payload; the circuit checks membership).
    pub utxo: Utxo,
    /// The owner's public key (its hash must equal `utxo.address`).
    pub pubkey: PublicKey,
    /// Schnorr signature over the transaction sighash.
    pub signature: Signature,
}

impl SignedInput {
    /// Verifies ownership and signature for `sighash`.
    pub fn verify(&self, sighash: &Digest32) -> bool {
        Address::from_public_key(&self.pubkey) == self.utxo.address
            && self
                .pubkey
                .verify(SC_SIGHASH_CONTEXT, sighash.as_bytes(), &self.signature)
    }
}

impl Encode for SignedInput {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.utxo.encode_into(out);
        self.pubkey.to_bytes().encode_into(out);
        self.signature.to_bytes().encode_into(out);
    }
}

/// A regular multi-input multi-output payment (§5.3.1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaymentTx {
    /// Spent UTXOs with authorization.
    pub inputs: Vec<SignedInput>,
    /// Created UTXOs.
    pub outputs: Vec<Utxo>,
}

impl PaymentTx {
    /// The message inputs sign: spent UTXOs + created outputs.
    pub fn sighash(&self) -> Digest32 {
        let spent: Vec<Utxo> = self.inputs.iter().map(|i| i.utxo).collect();
        digest("zendoo/sc-payment-sighash", &(spent, self.outputs.clone()))
    }

    /// Builds and signs a payment. Output nonces are derived from the
    /// spent inputs, making them unique per transaction.
    pub fn create(
        inputs: Vec<(Utxo, &SecretKey)>,
        recipients: Vec<(Address, Amount)>,
    ) -> PaymentTx {
        let spent: Vec<Utxo> = inputs.iter().map(|(u, _)| *u).collect();
        let outputs = derive_outputs("zendoo/payment-out", &spent, &recipients);
        let mut tx = PaymentTx {
            inputs: inputs
                .iter()
                .map(|(utxo, sk)| SignedInput {
                    utxo: *utxo,
                    pubkey: sk.public_key(),
                    signature: sk.sign(SC_SIGHASH_CONTEXT, b"placeholder"),
                })
                .collect(),
            outputs,
        };
        let sighash = tx.sighash();
        for (input, (_, sk)) in tx.inputs.iter_mut().zip(&inputs) {
            input.signature = sk.sign(SC_SIGHASH_CONTEXT, sighash.as_bytes());
        }
        tx
    }
}

/// A backward-transfer transaction (§5.3.3): spends UTXOs and appends
/// backward transfers for the next certificate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackwardTransferTx {
    /// Spent UTXOs with authorization.
    pub inputs: Vec<SignedInput>,
    /// Withdrawals to the mainchain.
    pub backward_transfers: Vec<BackwardTransfer>,
}

impl BackwardTransferTx {
    /// The message inputs sign.
    pub fn sighash(&self) -> Digest32 {
        let spent: Vec<Utxo> = self.inputs.iter().map(|i| i.utxo).collect();
        digest(
            "zendoo/sc-bt-sighash",
            &(spent, self.backward_transfers.clone()),
        )
    }

    /// Builds and signs a backward-transfer transaction.
    pub fn create(
        inputs: Vec<(Utxo, &SecretKey)>,
        withdrawals: Vec<(Address, Amount)>,
    ) -> BackwardTransferTx {
        let mut tx = BackwardTransferTx {
            inputs: inputs
                .iter()
                .map(|(utxo, sk)| SignedInput {
                    utxo: *utxo,
                    pubkey: sk.public_key(),
                    signature: sk.sign(SC_SIGHASH_CONTEXT, b"placeholder"),
                })
                .collect(),
            backward_transfers: withdrawals
                .into_iter()
                .map(|(receiver, amount)| BackwardTransfer { receiver, amount })
                .collect(),
        };
        let sighash = tx.sighash();
        for (input, (_, sk)) in tx.inputs.iter_mut().zip(&inputs) {
            input.signature = sk.sign(SC_SIGHASH_CONTEXT, sighash.as_bytes());
        }
        tx
    }
}

/// Latus forward-transfer receiver metadata: 64 bytes —
/// `receiverAddr (32) ‖ paybackAddr (32)` (§5.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiverMetadata {
    /// The sidechain address to credit.
    pub receiver: Address,
    /// The mainchain address refunded if the transfer fails.
    pub payback: Address,
}

impl ReceiverMetadata {
    /// Serializes to the on-chain 64-byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(self.receiver.0.as_bytes());
        out.extend_from_slice(self.payback.0.as_bytes());
        out
    }

    /// Parses metadata; `None` marks the FT malformed (§5.3.2: the
    /// mainchain never validates metadata semantics).
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 64 {
            return None;
        }
        let mut receiver = [0u8; 32];
        let mut payback = [0u8; 32];
        receiver.copy_from_slice(&bytes[..32]);
        payback.copy_from_slice(&bytes[32..]);
        Some(ReceiverMetadata {
            receiver: Address(Digest32(receiver)),
            payback: Address(Digest32(payback)),
        })
    }
}

/// Evidence that a synchronized transaction carries *exactly* the
/// referenced MC block's data for this sidechain (§5.5.1: `mproof` /
/// `proofOfNoData`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum McRefEvidence {
    /// The block has data for this sidechain: a commitment-subtree
    /// membership proof.
    Membership(zendoo_core::commitment::ScMembershipProof),
    /// The block has no data for this sidechain: an absence proof; the
    /// carried lists must be empty.
    NoData(zendoo_core::commitment::ScAbsenceProof),
}

/// Binding of a synchronized transaction to a mainchain block: the MC
/// header plus commitment evidence. The base circuit verifies the header
/// hash and the evidence against `header.sc_txs_commitment`, so forgers
/// cannot fabricate, drop or reorder synchronized items.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct McRefBinding {
    /// The referenced MC block header.
    pub header: zendoo_mainchain::BlockHeader,
    /// Membership or absence evidence.
    pub evidence: McRefEvidence,
}

impl McRefBinding {
    /// Verifies that `fts` is exactly the referenced block's FT list for
    /// `sidechain_id`.
    pub fn verify_forward_transfers(
        &self,
        mc_block: &Digest32,
        sidechain_id: &zendoo_core::ids::SidechainId,
        fts: &[ForwardTransfer],
    ) -> bool {
        if self.header.hash() != *mc_block {
            return false;
        }
        let root = self.header.sc_txs_commitment;
        match &self.evidence {
            McRefEvidence::Membership(proof) => {
                proof.sidechain_id == *sidechain_id && proof.verify_forward_transfers(&root, fts)
            }
            McRefEvidence::NoData(proof) => {
                proof.target == *sidechain_id && fts.is_empty() && proof.verify(&root)
            }
        }
    }

    /// Verifies that `btrs` is exactly the referenced block's BTR list
    /// for `sidechain_id`.
    pub fn verify_backward_transfer_requests(
        &self,
        mc_block: &Digest32,
        sidechain_id: &zendoo_core::ids::SidechainId,
        btrs: &[BackwardTransferRequest],
    ) -> bool {
        if self.header.hash() != *mc_block {
            return false;
        }
        let root = self.header.sc_txs_commitment;
        match &self.evidence {
            McRefEvidence::Membership(proof) => {
                proof.sidechain_id == *sidechain_id
                    && proof.verify_backward_transfer_requests(&root, btrs)
            }
            McRefEvidence::NoData(proof) => {
                proof.target == *sidechain_id && btrs.is_empty() && proof.verify(&root)
            }
        }
    }
}

/// The synchronized forward-transfers transaction (§5.3.2): the
/// sidechain-side "receiving" half of MC→SC transfers, acting as a
/// mainchain-authorized coinbase.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardTransfersTx {
    /// Hash of the referenced MC block (`mcid`).
    pub mc_block: Digest32,
    /// The forward transfers of that block for this sidechain, in block
    /// order.
    pub transfers: Vec<ForwardTransfer>,
    /// Commitment evidence binding `transfers` to the MC block.
    pub binding: McRefBinding,
}

/// The synchronized backward-transfer-requests transaction (§5.3.4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtrTx {
    /// Hash of the referenced MC block (`mcid`).
    pub mc_block: Digest32,
    /// The BTRs of that block for this sidechain, in block order.
    pub requests: Vec<BackwardTransferRequest>,
    /// Commitment evidence binding `requests` to the MC block.
    pub binding: McRefBinding,
}

/// Extracts the claimed UTXO from a Latus BTR's proofdata
/// (`proofdata = {utxo}`, §5.5.3.2 — element 0 is the encoded UTXO).
pub fn btr_claimed_utxo(btr: &BackwardTransferRequest) -> Option<Utxo> {
    match btr.proofdata.get(0)? {
        zendoo_core::proofdata::ProofDataElem::Bytes(bytes) => decode_utxo(bytes),
        _ => None,
    }
}

/// Canonical UTXO byte decoding (inverse of its `Encode` impl).
pub fn decode_utxo(bytes: &[u8]) -> Option<Utxo> {
    if bytes.len() != 32 + 8 + 32 {
        return None;
    }
    let mut address = [0u8; 32];
    address.copy_from_slice(&bytes[..32]);
    let mut amount = [0u8; 8];
    amount.copy_from_slice(&bytes[32..40]);
    let mut nonce = [0u8; 32];
    nonce.copy_from_slice(&bytes[40..]);
    Some(Utxo {
        address: Address(Digest32(address)),
        amount: Amount::from_units(u64::from_be_bytes(amount)),
        nonce: Digest32(nonce),
    })
}

/// A Latus transaction (§5.3's four logical types).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScTransaction {
    /// Regular payment.
    Payment(PaymentTx),
    /// Withdrawal initiation.
    BackwardTransfer(BackwardTransferTx),
    /// Synchronized MC→SC transfers.
    ForwardTransfers(ForwardTransfersTx),
    /// Synchronized mainchain-managed withdrawal requests.
    BackwardTransferRequests(BtrTx),
}

impl ScTransaction {
    /// The transaction id.
    pub fn txid(&self) -> Digest32 {
        match self {
            ScTransaction::Payment(tx) => {
                digest("zendoo/sc-tx-pay", &(tx.sighash(), tx.inputs.clone()))
            }
            ScTransaction::BackwardTransfer(tx) => {
                digest("zendoo/sc-tx-bt", &(tx.sighash(), tx.inputs.clone()))
            }
            ScTransaction::ForwardTransfers(tx) => {
                digest("zendoo/sc-tx-ft", &(tx.mc_block, tx.transfers.clone()))
            }
            ScTransaction::BackwardTransferRequests(tx) => {
                digest("zendoo/sc-tx-btr", &(tx.mc_block, tx.requests.clone()))
            }
        }
    }
}

/// One step of a synchronized-FT application (§5.3.2): each FT either
/// mints an output or fails into a rejection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtStep {
    /// The transfer minted a UTXO.
    Minted(LeafUpdate),
    /// `MST_Position` collided with an occupied slot; coins refunded via
    /// backward transfer. The proof shows the slot was occupied.
    RejectedCollision {
        /// Occupancy proof at the contested slot.
        occupied: SmtProof,
        /// The leaf found there.
        occupied_leaf: Fp,
    },
    /// An aggregated settlement forward transfer (batched cross-chain
    /// delivery): one sub-step per batch entry, in entry order.
    Settled(Vec<FtEntryStep>),
    /// Metadata unparseable; the full amount is refunded via backward
    /// transfer to the payback address derived by the total
    /// [`salvage_payback`] rule (never stranded in the registry
    /// balance).
    RejectedMalformed,
}

/// One entry of an aggregated settlement forward transfer: minted into
/// the entry receiver's slot, or refunded to the entry's payback
/// address on a slot collision.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtEntryStep {
    /// The entry minted a UTXO for its receiver.
    Minted(LeafUpdate),
    /// The entry's deterministic slot was occupied; its coins refunded
    /// via backward transfer to the entry's payback address.
    RejectedCollision {
        /// Occupancy proof at the contested slot.
        occupied: SmtProof,
        /// The leaf found there.
        occupied_leaf: Fp,
    },
}

/// One step of a synchronized-BTR application (§5.3.4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BtrStep {
    /// The claimed UTXO existed; it is spent and a BT appended.
    Fulfilled(LeafUpdate),
    /// The claimed UTXO was not in the state (double-spent or never
    /// existed); proof shows the slot empty or differently occupied.
    RejectedAbsent {
        /// Path at the claimed position.
        path: SmtProof,
        /// What the slot holds (`None` = empty).
        found_leaf: Option<Fp>,
    },
    /// The request's proofdata did not decode to a UTXO, or its fields
    /// disagreed with the request.
    RejectedMalformed,
}

/// The full witness of one state transition: everything the base circuit
/// needs to re-derive `s_{i+1}` from `s_i` (§5.4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionWitness {
    /// The applied transaction.
    pub tx: ScTransaction,
    /// MST root before.
    pub pre_mst_root: Fp,
    /// Backward-transfer accumulator before.
    pub pre_bt_accumulator: Fp,
    /// Delta accumulator before.
    pub pre_delta_accumulator: Fp,
    /// Mainchain-sync accumulator before.
    pub pre_sync_accumulator: Fp,
    /// Ordered leaf updates (payments/BTs).
    pub updates: Vec<LeafUpdate>,
    /// Per-FT steps (only for `ForwardTransfers`).
    pub ft_steps: Vec<FtStep>,
    /// Per-BTR steps (only for `BackwardTransferRequests`).
    pub btr_steps: Vec<BtrStep>,
    /// Backward transfers appended by this transition, in order.
    pub appended_bts: Vec<BackwardTransfer>,
}

/// Transaction application failures (§5.3 rules).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// An input signature or ownership check failed.
    BadAuthorization {
        /// Index of the offending input.
        input: usize,
    },
    /// An input UTXO is not in the MST.
    UnknownInput(Digest32),
    /// The same UTXO is spent twice in one transaction.
    DuplicateInput(Digest32),
    /// Outputs (or withdrawals) exceed inputs.
    ValueImbalance {
        /// Total input value.
        input: Amount,
        /// Total output value.
        output: Amount,
    },
    /// An output's deterministic slot is occupied (payment failure mode).
    OutputCollision {
        /// The contested position.
        position: u64,
    },
    /// Two outputs of this transaction map to the same slot.
    IntraTxCollision {
        /// The contested position.
        position: u64,
    },
    /// Amount arithmetic overflow.
    AmountOverflow,
    /// A transaction of this kind must have at least one input.
    NoInputs,
    /// The MC binding of a synchronized transaction failed verification
    /// (wrong header, wrong sidechain, or list mismatch).
    BadMcBinding,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::BadAuthorization { input } => write!(f, "input {input} authorization failed"),
            TxError::UnknownInput(d) => write!(f, "input utxo {d} not in state"),
            TxError::DuplicateInput(d) => write!(f, "utxo {d} spent twice"),
            TxError::ValueImbalance { input, output } => {
                write!(f, "outputs {output} exceed inputs {input}")
            }
            TxError::OutputCollision { position } => {
                write!(f, "output slot {position} occupied")
            }
            TxError::IntraTxCollision { position } => {
                write!(f, "two outputs map to slot {position}")
            }
            TxError::AmountOverflow => write!(f, "amount overflow"),
            TxError::NoInputs => write!(f, "transaction has no inputs"),
            TxError::BadMcBinding => write!(f, "mainchain reference binding invalid"),
        }
    }
}

impl std::error::Error for TxError {}

/// Applies a transaction to the state (the `update` function of §5.3),
/// returning the transition witness. Application is atomic: on error the
/// state is unchanged.
///
/// # Errors
///
/// [`TxError`] per the rules of the transaction's type. Synchronized
/// transactions (`ForwardTransfers`, `BackwardTransferRequests`) never
/// fail as a whole — individual items degrade to rejections — except on
/// arithmetic overflow.
pub fn apply_transaction(
    params: &crate::params::LatusParams,
    state: &mut SidechainState,
    tx: &ScTransaction,
) -> Result<TransitionWitness, TxError> {
    match tx {
        ScTransaction::Payment(p) => {
            apply_spend(state, tx, &p.inputs, &p.outputs, &[], p.sighash())
        }
        ScTransaction::BackwardTransfer(bt) => apply_spend(
            state,
            tx,
            &bt.inputs,
            &[],
            &bt.backward_transfers,
            bt.sighash(),
        ),
        ScTransaction::ForwardTransfers(ft) => apply_forward_transfers(params, state, tx, ft),
        ScTransaction::BackwardTransferRequests(btr) => apply_btrs(params, state, tx, btr),
    }
}

/// Shared plan/execute path for payments and backward-transfer txs.
fn apply_spend(
    state: &mut SidechainState,
    tx: &ScTransaction,
    inputs: &[SignedInput],
    outputs: &[Utxo],
    withdrawals: &[BackwardTransfer],
    sighash: Digest32,
) -> Result<TransitionWitness, TxError> {
    if inputs.is_empty() {
        return Err(TxError::NoInputs);
    }
    // ---- Plan (no mutation) ----
    let mut seen = HashSet::new();
    let mut total_in = Amount::ZERO;
    for (i, input) in inputs.iter().enumerate() {
        if !seen.insert(input.utxo.digest()) {
            return Err(TxError::DuplicateInput(input.utxo.digest()));
        }
        if !input.verify(&sighash) {
            return Err(TxError::BadAuthorization { input: i });
        }
        if !state.mst().contains(&input.utxo) {
            return Err(TxError::UnknownInput(input.utxo.digest()));
        }
        total_in = total_in
            .checked_add(input.utxo.amount)
            .ok_or(TxError::AmountOverflow)?;
    }
    let out_value =
        Amount::checked_sum(outputs.iter().map(|o| o.amount)).ok_or(TxError::AmountOverflow)?;
    let wd_value =
        Amount::checked_sum(withdrawals.iter().map(|w| w.amount)).ok_or(TxError::AmountOverflow)?;
    let total_out = out_value
        .checked_add(wd_value)
        .ok_or(TxError::AmountOverflow)?;
    if total_out > total_in {
        return Err(TxError::ValueImbalance {
            input: total_in,
            output: total_out,
        });
    }
    // Slot availability after removals.
    let depth = state.mst().depth();
    let freed: HashSet<u64> = inputs
        .iter()
        .map(|i| mst_position(&i.utxo, depth))
        .collect();
    let mut planned: HashSet<u64> = HashSet::new();
    for output in outputs {
        let position = mst_position(output, depth);
        if !planned.insert(position) {
            return Err(TxError::IntraTxCollision { position });
        }
        if state.mst().utxo_at(position).is_some() && !freed.contains(&position) {
            return Err(TxError::OutputCollision { position });
        }
    }

    // ---- Execute, recording the witness ----
    let pre_mst_root = state.mst().root();
    let pre_bt_accumulator = state.bt_accumulator();
    let pre_delta_accumulator = state.delta_accumulator();
    let pre_sync_accumulator = state.sync_accumulator();
    let mut updates = Vec::with_capacity(inputs.len() + outputs.len());
    for input in inputs {
        let position = state.mst().position_of(&input.utxo).expect("planned above");
        let path = state.mst().proof(position);
        updates.push(LeafUpdate {
            path,
            old_leaf: Some(input.utxo.leaf()),
            new_leaf: None,
        });
        state.remove_utxo(&input.utxo).expect("planned above");
    }
    for output in outputs {
        let position = mst_position(output, depth);
        let path = state.mst().proof(position);
        updates.push(LeafUpdate {
            path,
            old_leaf: None,
            new_leaf: Some(output.leaf()),
        });
        state.insert_utxo(output).expect("planned above");
    }
    for withdrawal in withdrawals {
        state.append_backward_transfer(*withdrawal);
    }
    Ok(TransitionWitness {
        tx: tx.clone(),
        pre_mst_root,
        pre_bt_accumulator,
        pre_delta_accumulator,
        pre_sync_accumulator,
        updates,
        ft_steps: Vec::new(),
        btr_steps: Vec::new(),
        appended_bts: withdrawals.to_vec(),
    })
}

/// Deterministic UTXO minted by the `i`-th FT of an FTTx.
pub fn ft_output_utxo(
    mc_block: &Digest32,
    index: usize,
    receiver: Address,
    amount: Amount,
) -> Utxo {
    Utxo {
        address: receiver,
        amount,
        nonce: Digest32::hash_tagged(
            "zendoo/ft-nonce",
            &[mc_block.as_bytes(), &(index as u64).to_be_bytes()],
        ),
    }
}

/// Deterministic UTXO minted by entry `entry` of the `i`-th
/// (aggregated settlement) FT of an FTTx — the per-receiver mint of a
/// batched cross-chain delivery.
pub fn ft_batch_output_utxo(
    mc_block: &Digest32,
    index: usize,
    entry: usize,
    receiver: Address,
    amount: Amount,
) -> Utxo {
    Utxo {
        address: receiver,
        amount,
        nonce: Digest32::hash_tagged(
            "zendoo/ft-batch-nonce",
            &[
                mc_block.as_bytes(),
                &(index as u64).to_be_bytes(),
                &(entry as u64).to_be_bytes(),
            ],
        ),
    }
}

/// How a forward transfer's receiver metadata classifies on this
/// sidechain. Shared by transaction application and the transition
/// circuit so both sides dispatch identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtKind {
    /// Classic 64-byte Latus metadata.
    Classic {
        /// The sidechain address to credit.
        receiver: Address,
        /// The mainchain refund address.
        payback: Address,
    },
    /// Tagged single cross-chain transfer metadata (per-transfer
    /// delivery form).
    Cross {
        /// Parsed cross-chain metadata.
        meta: zendoo_core::crosschain::CrossChainMetadata,
    },
    /// An aggregated settlement batch (windowed batch delivery). The
    /// decoded batch passed its commitment check, totals the FT amount
    /// and targets this sidechain.
    Settlement(zendoo_core::settlement::SettlementBatch),
    /// None of the known forms (or a batch whose commitment, total or
    /// destination is wrong): the FT is rejected as malformed.
    Malformed,
}

/// Classifies one forward transfer's metadata for `sidechain_id`
/// (§5.3.2 leaves the metadata format to the sidechain; Latus accepts
/// the classic, cross-transfer and settlement-batch forms).
pub fn classify_ft_metadata(
    sidechain_id: &zendoo_core::ids::SidechainId,
    ft: &ForwardTransfer,
) -> FtKind {
    if let Some(meta) = ReceiverMetadata::parse(&ft.receiver_metadata) {
        return FtKind::Classic {
            receiver: meta.receiver,
            payback: meta.payback,
        };
    }
    if let Some(meta) = zendoo_core::crosschain::parse_cross_metadata(&ft.receiver_metadata) {
        return FtKind::Cross { meta };
    }
    match zendoo_core::settlement::decode_settlement_metadata(&ft.receiver_metadata) {
        Some(Ok(batch))
            if batch.dest == *sidechain_id && batch.total_amount() == Some(ft.amount) =>
        {
            FtKind::Settlement(batch)
        }
        Some(_) => FtKind::Malformed,
        None => FtKind::Malformed,
    }
}

/// Salvages a mainchain refund address from unparseable FT metadata.
///
/// The rule is total and deterministic, so the transition circuit can
/// re-derive (and therefore enforce) the exact refund the state
/// transition performs: blobs long enough to carry the classic
/// layout's payback slot (bytes 32..64 — the same offset the
/// cross-transfer form uses) refund to that slot, so a truncated or
/// overlong classic blob still pays back the address its sender put
/// there; anything shorter refunds to its zero-padded leading bytes —
/// a deterministic address, so the value is provably parked on the
/// mainchain instead of silently stranded in the registry balance.
pub fn salvage_payback(metadata: &[u8]) -> Address {
    let mut bytes = [0u8; 32];
    if metadata.len() >= 64 {
        bytes.copy_from_slice(&metadata[32..64]);
    } else {
        let n = metadata.len().min(32);
        bytes[..n].copy_from_slice(&metadata[..n]);
    }
    Address(Digest32(bytes))
}

fn apply_forward_transfers(
    params: &crate::params::LatusParams,
    state: &mut SidechainState,
    tx: &ScTransaction,
    ft_tx: &ForwardTransfersTx,
) -> Result<TransitionWitness, TxError> {
    if !ft_tx.binding.verify_forward_transfers(
        &ft_tx.mc_block,
        &params.sidechain_id,
        &ft_tx.transfers,
    ) {
        return Err(TxError::BadMcBinding);
    }
    let pre_mst_root = state.mst().root();
    let pre_bt_accumulator = state.bt_accumulator();
    let pre_delta_accumulator = state.delta_accumulator();
    let pre_sync_accumulator = state.sync_accumulator();
    let depth = state.mst().depth();
    let mut steps = Vec::with_capacity(ft_tx.transfers.len());
    let mut appended = Vec::new();

    /// Mints `utxo` (or refunds `payback` on a slot collision),
    /// returning the mint update or the collision evidence.
    fn mint_or_refund(
        state: &mut SidechainState,
        appended: &mut Vec<BackwardTransfer>,
        utxo: &Utxo,
        payback: Address,
        depth: u32,
    ) -> Result<LeafUpdate, (SmtProof, Fp)> {
        let position = mst_position(utxo, depth);
        if let Some(present) = state.mst().utxo_at(position) {
            let occupied_leaf = present.leaf();
            let occupied = state.mst().proof(position);
            let refund = BackwardTransfer {
                receiver: payback,
                amount: utxo.amount,
            };
            state.append_backward_transfer(refund);
            appended.push(refund);
            return Err((occupied, occupied_leaf));
        }
        let path = state.mst().proof(position);
        state.insert_utxo(utxo).expect("slot checked empty");
        Ok(LeafUpdate {
            path,
            old_leaf: None,
            new_leaf: Some(utxo.leaf()),
        })
    }

    for (i, ft) in ft_tx.transfers.iter().enumerate() {
        // Classic 64-byte Latus metadata, the tagged single cross-chain
        // form, or an aggregated settlement batch delivered by the
        // mainchain router (§5.3.2 leaves the metadata format to the
        // sidechain).
        match classify_ft_metadata(&params.sidechain_id, ft) {
            FtKind::Malformed => {
                // Unparseable metadata. The mainchain already credited
                // this sidechain's registry balance when it included the
                // FT, so dropping the transfer here would strand the
                // coins in that balance forever. Refund the full amount
                // through the consensus-checked backward-transfer path
                // instead, to the payback address the shared total
                // salvage rule derives — the transition circuit
                // re-derives the same address and amount, so a prover
                // can neither redirect nor suppress the refund.
                let refund = BackwardTransfer {
                    receiver: salvage_payback(&ft.receiver_metadata),
                    amount: ft.amount,
                };
                state.append_backward_transfer(refund);
                appended.push(refund);
                steps.push(FtStep::RejectedMalformed);
            }
            FtKind::Classic { receiver, payback } => {
                let utxo = ft_output_utxo(&ft_tx.mc_block, i, receiver, ft.amount);
                match mint_or_refund(state, &mut appended, &utxo, payback, depth) {
                    Ok(update) => steps.push(FtStep::Minted(update)),
                    Err((occupied, occupied_leaf)) => steps.push(FtStep::RejectedCollision {
                        occupied,
                        occupied_leaf,
                    }),
                }
            }
            FtKind::Cross { meta } => {
                let utxo = ft_output_utxo(&ft_tx.mc_block, i, meta.receiver, ft.amount);
                match mint_or_refund(state, &mut appended, &utxo, meta.payback, depth) {
                    Ok(update) => {
                        state.record_inbound_cross(zendoo_core::crosschain::InboundCrossTransfer {
                            source: meta.source,
                            nonce: meta.nonce,
                            receiver: meta.receiver,
                            amount: ft.amount,
                            mc_block: ft_tx.mc_block,
                        });
                        steps.push(FtStep::Minted(update));
                    }
                    Err((occupied, occupied_leaf)) => steps.push(FtStep::RejectedCollision {
                        occupied,
                        occupied_leaf,
                    }),
                }
            }
            FtKind::Settlement(batch) => {
                // One mint per batch entry, each into its own receiver's
                // slot; a colliding entry refunds its own payback.
                let mut entry_steps = Vec::with_capacity(batch.transfers.len());
                for (entry, xct) in batch.transfers.iter().enumerate() {
                    let utxo =
                        ft_batch_output_utxo(&ft_tx.mc_block, i, entry, xct.receiver, xct.amount);
                    match mint_or_refund(state, &mut appended, &utxo, xct.payback, depth) {
                        Ok(update) => {
                            state.record_inbound_cross(
                                zendoo_core::crosschain::InboundCrossTransfer {
                                    source: xct.source,
                                    nonce: xct.nonce,
                                    receiver: xct.receiver,
                                    amount: xct.amount,
                                    mc_block: ft_tx.mc_block,
                                },
                            );
                            entry_steps.push(FtEntryStep::Minted(update));
                        }
                        Err((occupied, occupied_leaf)) => {
                            entry_steps.push(FtEntryStep::RejectedCollision {
                                occupied,
                                occupied_leaf,
                            });
                        }
                    }
                }
                steps.push(FtStep::Settled(entry_steps));
            }
        }
    }
    state.record_sync(crate::state::SyncKind::ForwardTransfers, &ft_tx.mc_block);
    Ok(TransitionWitness {
        tx: tx.clone(),
        pre_mst_root,
        pre_bt_accumulator,
        pre_delta_accumulator,
        pre_sync_accumulator,
        updates: Vec::new(),
        ft_steps: steps,
        btr_steps: Vec::new(),
        appended_bts: appended,
    })
}

fn apply_btrs(
    params: &crate::params::LatusParams,
    state: &mut SidechainState,
    tx: &ScTransaction,
    btr_tx: &BtrTx,
) -> Result<TransitionWitness, TxError> {
    if !btr_tx.binding.verify_backward_transfer_requests(
        &btr_tx.mc_block,
        &params.sidechain_id,
        &btr_tx.requests,
    ) {
        return Err(TxError::BadMcBinding);
    }
    let pre_mst_root = state.mst().root();
    let pre_bt_accumulator = state.bt_accumulator();
    let pre_delta_accumulator = state.delta_accumulator();
    let pre_sync_accumulator = state.sync_accumulator();
    let depth = state.mst().depth();
    let mut steps = Vec::with_capacity(btr_tx.requests.len());
    let mut appended = Vec::new();
    for request in &btr_tx.requests {
        let Some(utxo) = btr_claimed_utxo(request) else {
            steps.push(BtrStep::RejectedMalformed);
            continue;
        };
        // The request's amount and nullifier must match the claimed UTXO.
        if utxo.amount != request.amount || utxo.nullifier() != request.nullifier {
            steps.push(BtrStep::RejectedMalformed);
            continue;
        }
        let position = mst_position(&utxo, depth);
        if state.mst().contains(&utxo) {
            let path = state.mst().proof(position);
            state.remove_utxo(&utxo).expect("present");
            let bt = BackwardTransfer {
                receiver: request.receiver,
                amount: request.amount,
            };
            state.append_backward_transfer(bt);
            appended.push(bt);
            steps.push(BtrStep::Fulfilled(LeafUpdate {
                path,
                old_leaf: Some(utxo.leaf()),
                new_leaf: None,
            }));
        } else {
            let path = state.mst().proof(position);
            let found_leaf = state.mst().utxo_at(position).map(|u| u.leaf());
            steps.push(BtrStep::RejectedAbsent { path, found_leaf });
        }
    }
    state.record_sync(
        crate::state::SyncKind::BackwardTransferRequests,
        &btr_tx.mc_block,
    );
    Ok(TransitionWitness {
        tx: tx.clone(),
        pre_mst_root,
        pre_bt_accumulator,
        pre_delta_accumulator,
        pre_sync_accumulator,
        updates: Vec::new(),
        ft_steps: Vec::new(),
        btr_steps: steps,
        appended_bts: appended,
    })
}

/// Derives output UTXOs with per-transaction-unique nonces.
fn derive_outputs(domain: &str, spent: &[Utxo], recipients: &[(Address, Amount)]) -> Vec<Utxo> {
    let spent_digest = digest(domain, &spent.to_vec());
    recipients
        .iter()
        .enumerate()
        .map(|(i, (address, amount))| Utxo {
            address: *address,
            amount: *amount,
            nonce: Digest32::hash_tagged(
                domain,
                &[spent_digest.as_bytes(), &(i as u64).to_be_bytes()],
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LatusParams;
    use zendoo_core::commitment::ScTxsCommitmentBuilder;
    use zendoo_core::ids::SidechainId;
    use zendoo_core::proofdata::{ProofData, ProofDataElem};
    use zendoo_mainchain::pow::Target;
    use zendoo_mainchain::BlockHeader;
    use zendoo_primitives::schnorr::Keypair;

    fn params() -> LatusParams {
        LatusParams::new(SidechainId::from_label("sc"), 16)
    }

    fn funded_state(owner: &Keypair, amounts: &[u64]) -> (SidechainState, Vec<Utxo>) {
        let mut state = SidechainState::new(16);
        let address = Address::from_public_key(&owner.public);
        let utxos: Vec<Utxo> = amounts
            .iter()
            .enumerate()
            .map(|(i, a)| Utxo {
                address,
                amount: Amount::from_units(*a),
                nonce: Digest32::hash_bytes(&[i as u8]),
            })
            .collect();
        for u in &utxos {
            state.mst_mut().add(u).unwrap();
        }
        (state, utxos)
    }

    /// Builds a fake MC header + binding for a set of FTs/BTRs destined
    /// to the test sidechain.
    fn binding_for(
        fts: &[ForwardTransfer],
        btrs: &[BackwardTransferRequest],
    ) -> (Digest32, McRefBinding) {
        let mut builder = ScTxsCommitmentBuilder::new();
        for ft in fts {
            builder.add_forward_transfer(ft.clone());
        }
        for btr in btrs {
            builder.add_backward_transfer_request(btr.clone());
        }
        let commitment = builder.build();
        let header = BlockHeader {
            parent: Digest32::ZERO,
            height: 0,
            time: 0,
            tx_root: Digest32::ZERO,
            sc_txs_commitment: commitment.root(),
            target: Target::EASIEST,
            nonce: 0,
        };
        let sid = params().sidechain_id;
        let evidence = match commitment.membership_proof(&sid) {
            Some(proof) => McRefEvidence::Membership(proof),
            None => McRefEvidence::NoData(commitment.absence_proof(&sid).unwrap()),
        };
        (header.hash(), McRefBinding { header, evidence })
    }

    fn ft_tx(fts: Vec<ForwardTransfer>) -> (Digest32, ScTransaction) {
        let (mc_block, binding) = binding_for(&fts, &[]);
        (
            mc_block,
            ScTransaction::ForwardTransfers(ForwardTransfersTx {
                mc_block,
                transfers: fts,
                binding,
            }),
        )
    }

    fn btr_tx(btrs: Vec<BackwardTransferRequest>) -> ScTransaction {
        let (mc_block, binding) = binding_for(&[], &btrs);
        ScTransaction::BackwardTransferRequests(BtrTx {
            mc_block,
            requests: btrs,
            binding,
        })
    }

    #[test]
    fn payment_moves_value() {
        let alice = Keypair::from_seed(b"alice");
        let bob = Address::from_label("bob");
        let (mut state, utxos) = funded_state(&alice, &[10, 5]);
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![
                (bob, Amount::from_units(7)),
                (
                    Address::from_public_key(&alice.public),
                    Amount::from_units(3),
                ),
            ],
        ));
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert_eq!(witness.updates.len(), 3);
        assert_eq!(state.balance_of(&bob), Amount::from_units(7));
        assert_eq!(
            state.balance_of(&Address::from_public_key(&alice.public)),
            Amount::from_units(8)
        );
    }

    #[test]
    fn payment_witness_replays_root_transition() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded_state(&alice, &[10]);
        let pre_root = state.mst().root();
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(Address::from_label("bob"), Amount::from_units(10))],
        ));
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        let mut root = pre_root;
        for update in &witness.updates {
            root = update.apply_to_root(&root).expect("path valid in sequence");
        }
        assert_eq!(root, state.mst().root());
    }

    #[test]
    fn payment_rejects_overdraw_unknown_duplicate() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded_state(&alice, &[10]);
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(Address::from_label("bob"), Amount::from_units(11))],
        ));
        assert!(matches!(
            apply_transaction(&params(), &mut state, &tx),
            Err(TxError::ValueImbalance { .. })
        ));
        let ghost = Utxo {
            address: Address::from_public_key(&alice.public),
            amount: Amount::from_units(1),
            nonce: Digest32::hash_bytes(b"ghost"),
        };
        let tx = ScTransaction::Payment(PaymentTx::create(vec![(ghost, &alice.secret)], vec![]));
        assert!(matches!(
            apply_transaction(&params(), &mut state, &tx),
            Err(TxError::UnknownInput(_))
        ));
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &alice.secret), (utxos[0], &alice.secret)],
            vec![],
        ));
        assert!(matches!(
            apply_transaction(&params(), &mut state, &tx),
            Err(TxError::DuplicateInput(_))
        ));
    }

    #[test]
    fn payment_rejects_wrong_signer() {
        let alice = Keypair::from_seed(b"alice");
        let mallory = Keypair::from_seed(b"mallory");
        let (mut state, utxos) = funded_state(&alice, &[10]);
        let tx = ScTransaction::Payment(PaymentTx::create(
            vec![(utxos[0], &mallory.secret)],
            vec![(Address::from_label("m"), Amount::from_units(10))],
        ));
        assert!(matches!(
            apply_transaction(&params(), &mut state, &tx),
            Err(TxError::BadAuthorization { input: 0 })
        ));
    }

    #[test]
    fn backward_transfer_appends_bts() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded_state(&alice, &[10]);
        let mc_addr = Address::from_label("mc-alice");
        let tx = ScTransaction::BackwardTransfer(BackwardTransferTx::create(
            vec![(utxos[0], &alice.secret)],
            vec![(mc_addr, Amount::from_units(10))],
        ));
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert_eq!(witness.appended_bts.len(), 1);
        assert_eq!(state.backward_transfers().len(), 1);
        assert_eq!(state.total_value(), Amount::ZERO);
        assert_eq!(
            state.bt_accumulator(),
            crate::state::bt_list_accumulator(state.backward_transfers())
        );
    }

    #[test]
    fn forward_transfers_mint_and_reject() {
        let mut state = SidechainState::new(16);
        let meta = ReceiverMetadata {
            receiver: Address::from_label("sc-user"),
            payback: Address::from_label("mc-user"),
        };
        let good = ForwardTransfer {
            sidechain_id: params().sidechain_id,
            receiver_metadata: meta.to_bytes(),
            amount: Amount::from_units(9),
        };
        let malformed = ForwardTransfer {
            sidechain_id: params().sidechain_id,
            receiver_metadata: vec![1, 2, 3],
            amount: Amount::from_units(4),
        };
        let (_, tx) = ft_tx(vec![good, malformed]);
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert_eq!(witness.ft_steps.len(), 2);
        assert!(matches!(witness.ft_steps[0], FtStep::Minted(_)));
        assert!(matches!(witness.ft_steps[1], FtStep::RejectedMalformed));
        assert_eq!(
            state.balance_of(&Address::from_label("sc-user")),
            Amount::from_units(9)
        );
        // The malformed FT's full amount is refunded via backward
        // transfer — never stranded in the MC-side registry balance.
        assert_eq!(
            witness.appended_bts,
            vec![BackwardTransfer {
                receiver: salvage_payback(&[1, 2, 3]),
                amount: Amount::from_units(4),
            }]
        );
        assert_eq!(state.backward_transfers(), witness.appended_bts);
    }

    #[test]
    fn malformed_ft_with_classic_payback_slot_refunds_it() {
        // A blob that is *almost* classic metadata (one trailing byte
        // too many) still carries the payback address at bytes 32..64;
        // the salvage rule recovers it, so the sender's refund address
        // is honoured even for a corrupted envelope.
        let mut state = SidechainState::new(16);
        let payback = Address::from_label("mc-payback");
        let mut blob = ReceiverMetadata {
            receiver: Address::from_label("sc-user"),
            payback,
        }
        .to_bytes();
        blob.push(0xFF);
        assert_eq!(
            classify_ft_metadata(
                &params().sidechain_id,
                &ForwardTransfer {
                    sidechain_id: params().sidechain_id,
                    receiver_metadata: blob.clone(),
                    amount: Amount::from_units(7),
                }
            ),
            FtKind::Malformed
        );
        let ft = ForwardTransfer {
            sidechain_id: params().sidechain_id,
            receiver_metadata: blob,
            amount: Amount::from_units(7),
        };
        let (_, tx) = ft_tx(vec![ft]);
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert!(matches!(witness.ft_steps[0], FtStep::RejectedMalformed));
        assert_eq!(
            witness.appended_bts,
            vec![BackwardTransfer {
                receiver: payback,
                amount: Amount::from_units(7),
            }]
        );
        // Nothing minted on the sidechain: the value went back out.
        assert_eq!(state.total_value(), Amount::ZERO);
    }

    #[test]
    fn forward_transfers_with_tampered_list_rejected() {
        let mut state = SidechainState::new(16);
        let meta = ReceiverMetadata {
            receiver: Address::from_label("sc-user"),
            payback: Address::from_label("mc-user"),
        };
        let real = ForwardTransfer {
            sidechain_id: params().sidechain_id,
            receiver_metadata: meta.to_bytes(),
            amount: Amount::from_units(9),
        };
        let (mc_block, binding) = binding_for(std::slice::from_ref(&real), &[]);
        // Forge a doubled amount not present in the MC commitment.
        let mut forged = real;
        forged.amount = Amount::from_units(900);
        let tx = ScTransaction::ForwardTransfers(ForwardTransfersTx {
            mc_block,
            transfers: vec![forged],
            binding,
        });
        assert!(matches!(
            apply_transaction(&params(), &mut state, &tx),
            Err(TxError::BadMcBinding)
        ));
    }

    #[test]
    fn forward_transfers_empty_block_uses_absence_proof() {
        let mut state = SidechainState::new(16);
        let (_, tx) = ft_tx(vec![]);
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert!(witness.ft_steps.is_empty());
        // The sync accumulator advanced even with no transfers.
        assert_ne!(
            state.sync_accumulator(),
            crate::state::empty_sync_accumulator()
        );
    }

    #[test]
    fn forward_transfer_collision_refunds_payback() {
        let mut state = SidechainState::new(16);
        let meta = ReceiverMetadata {
            receiver: Address::from_label("sc-user"),
            payback: Address::from_label("mc-refund"),
        };
        let ft = ForwardTransfer {
            sidechain_id: params().sidechain_id,
            receiver_metadata: meta.to_bytes(),
            amount: Amount::from_units(9),
        };
        let (mc_block, binding) = binding_for(std::slice::from_ref(&ft), &[]);
        let would_be = ft_output_utxo(&mc_block, 0, meta.receiver, ft.amount);
        let position = mst_position(&would_be, 16);
        // Install a different utxo at that position by brute-forcing a
        // nonce that maps there.
        let mut blocker = None;
        for i in 0u64..2_000_000 {
            let candidate = Utxo {
                address: Address::from_label("blocker"),
                amount: Amount::from_units(1),
                nonce: Digest32::hash_bytes(&i.to_be_bytes()),
            };
            if mst_position(&candidate, 16) == position {
                blocker = Some(candidate);
                break;
            }
        }
        let blocker = blocker.expect("a colliding nonce exists in 2M draws");
        state.mst_mut().add(&blocker).unwrap();

        let tx = ScTransaction::ForwardTransfers(ForwardTransfersTx {
            mc_block,
            transfers: vec![ft],
            binding,
        });
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert!(matches!(
            witness.ft_steps[0],
            FtStep::RejectedCollision { .. }
        ));
        assert_eq!(state.backward_transfers().len(), 1);
        assert_eq!(
            state.backward_transfers()[0].receiver,
            Address::from_label("mc-refund")
        );
    }

    fn make_btr(utxo: &Utxo) -> BackwardTransferRequest {
        BackwardTransferRequest {
            sidechain_id: params().sidechain_id,
            receiver: Address::from_label("mc-user"),
            amount: utxo.amount,
            nullifier: utxo.nullifier(),
            proofdata: ProofData(vec![ProofDataElem::Bytes(utxo.encoded())]),
            proof: zendoo_snark::backend::Proof::from_bytes(&[0u8; 65]).unwrap(),
        }
    }

    #[test]
    fn btr_fulfilled_then_rejected_on_replay() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded_state(&alice, &[10]);
        let claimed = utxos[0];
        let tx = btr_tx(vec![make_btr(&claimed)]);
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert!(matches!(witness.btr_steps[0], BtrStep::Fulfilled(_)));
        assert_eq!(state.total_value(), Amount::ZERO);
        assert_eq!(state.backward_transfers().len(), 1);

        let tx2 = btr_tx(vec![make_btr(&claimed)]);
        let witness2 = apply_transaction(&params(), &mut state, &tx2).unwrap();
        assert!(matches!(
            witness2.btr_steps[0],
            BtrStep::RejectedAbsent { .. }
        ));
        assert_eq!(state.backward_transfers().len(), 1);
    }

    #[test]
    fn btr_with_wrong_amount_rejected_as_malformed() {
        let alice = Keypair::from_seed(b"alice");
        let (mut state, utxos) = funded_state(&alice, &[10]);
        let mut request = make_btr(&utxos[0]);
        request.amount = Amount::from_units(999);
        let tx = btr_tx(vec![request]);
        let witness = apply_transaction(&params(), &mut state, &tx).unwrap();
        assert!(matches!(witness.btr_steps[0], BtrStep::RejectedMalformed));
        assert!(state.mst().contains(&utxos[0]), "state untouched");
    }

    #[test]
    fn utxo_byte_roundtrip() {
        let utxo = Utxo {
            address: Address::from_label("x"),
            amount: Amount::from_units(123),
            nonce: Digest32::hash_bytes(b"n"),
        };
        assert_eq!(decode_utxo(&utxo.encoded()), Some(utxo));
        assert_eq!(decode_utxo(b"short"), None);
    }

    #[test]
    fn metadata_roundtrip() {
        let meta = ReceiverMetadata {
            receiver: Address::from_label("r"),
            payback: Address::from_label("p"),
        };
        assert_eq!(ReceiverMetadata::parse(&meta.to_bytes()), Some(meta));
        assert_eq!(ReceiverMetadata::parse(&[0u8; 63]), None);
    }
}
