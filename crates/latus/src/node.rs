//! The Latus full node: forging, mainchain synchronization, epoch
//! management and certificate production (paper §5.1, §5.4, §5.5).
//!
//! The node observes the mainchain block-by-block (the parent-child
//! relationship of §1: "sidechain nodes directly observe the mainchain"),
//! forges one sidechain block per observed MC block, accumulates the
//! epoch's transition witnesses, and at each withdrawal-epoch boundary
//! produces a certificate whose SNARK proof attests the entire epoch
//! (Fig 11). It also serves user-facing proof requests (BTR/CSW).

use std::collections::BTreeMap;
use std::sync::Arc;
use zendoo_core::certificate::{wcert_public_inputs, WcertSysData, WithdrawalCertificate};
use zendoo_core::config::{SidechainConfig, SidechainConfigBuilder};
use zendoo_core::crosschain::{escrow_address, CrossChainTransfer, InboundCrossTransfer};
use zendoo_core::epoch::EpochSchedule;
use zendoo_core::ids::{Address, Amount, EpochId, SidechainId};
use zendoo_core::withdrawal::{
    btr_public_inputs, BackwardTransferRequest, BtrSysData, CeasedSidechainWithdrawal,
};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::schnorr::{Keypair, SecretKey};
use zendoo_snark::backend::{prove, ProveError, ProvingKey, VerifyingKey};

use crate::block::{McBlockReference, McRefError, ScBlock, ScBlockHeader};
use crate::cert::{
    sign_withdrawal, utxo_proofdata, utxo_proofdata_schema, wcert_proofdata,
    wcert_proofdata_schema, BtrCircuit, CertInclusion, CswCircuit, CswWitness, DeltaLink,
    OwnershipWitness, WcertCircuit, WcertWitness,
};
use crate::consensus::{try_lead_slot, ConsensusParams, LeadershipProof, StakeDistribution};
use crate::mst::{mst_position, Mst, MstDelta, Utxo};
use crate::params::LatusParams;
use crate::proof::{proof_system, EpochProofBuilder, LatusProofSystem};
use crate::state::SidechainState;
use crate::tx::{apply_transaction, BackwardTransferTx, PaymentTx, ScTransaction, TxError};

/// All proving/verifying material of one Latus deployment.
pub struct LatusKeys {
    /// The recursive state-transition system (base + merge).
    pub system: LatusProofSystem,
    /// Certificate circuit + keys.
    pub wcert_circuit: WcertCircuit,
    /// Certificate proving key.
    pub wcert_pk: ProvingKey,
    /// Certificate verification key (registered on the MC).
    pub wcert_vk: VerifyingKey,
    /// BTR circuit + keys.
    pub btr_circuit: BtrCircuit,
    /// BTR proving key.
    pub btr_pk: ProvingKey,
    /// BTR verification key.
    pub btr_vk: VerifyingKey,
    /// CSW circuit + keys.
    pub csw_circuit: CswCircuit,
    /// CSW proving key.
    pub csw_pk: ProvingKey,
    /// CSW verification key.
    pub csw_vk: VerifyingKey,
}

impl LatusKeys {
    /// Performs the full trusted setup for a deployment: the recursive
    /// system plus the three posting circuits (§4.2's `wcert_vk`,
    /// `btr_vk`, `csw_vk`).
    pub fn generate(params: LatusParams, schedule: EpochSchedule, seed: &[u8]) -> Self {
        let system = proof_system(params, seed);
        let wcert_circuit =
            WcertCircuit::new(params, schedule, *system.base_vk(), *system.merge_vk());
        let (wcert_pk, wcert_vk) = zendoo_snark::backend::setup_deterministic(&wcert_circuit, seed);
        let btr_circuit = BtrCircuit::new(params);
        let (btr_pk, btr_vk) = zendoo_snark::backend::setup_deterministic(&btr_circuit, seed);
        let csw_circuit = CswCircuit::new(params);
        let (csw_pk, csw_vk) = zendoo_snark::backend::setup_deterministic(&csw_circuit, seed);
        LatusKeys {
            system,
            wcert_circuit,
            wcert_pk,
            wcert_vk,
            btr_circuit,
            btr_pk,
            btr_vk,
            csw_circuit,
            csw_pk,
            csw_vk,
        }
    }

    /// Assembles the [`SidechainConfig`] to register on the mainchain.
    pub fn sidechain_config(
        &self,
        params: &LatusParams,
        schedule: EpochSchedule,
    ) -> SidechainConfig {
        SidechainConfigBuilder::new(params.sidechain_id, self.wcert_vk)
            .start_block(schedule.start_block())
            .epoch_len(schedule.epoch_len())
            .submit_len(schedule.submit_len())
            .btr_vk(self.btr_vk)
            .csw_vk(self.csw_vk)
            .wcert_proofdata(wcert_proofdata_schema())
            .btr_proofdata(utxo_proofdata_schema())
            .csw_proofdata(utxo_proofdata_schema())
            .build()
            .expect("latus configuration is valid by construction")
    }
}

impl std::fmt::Debug for LatusKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatusKeys")
            .field("wcert_vk", &self.wcert_vk)
            .field("btr_vk", &self.btr_vk)
            .field("csw_vk", &self.csw_vk)
            .finish()
    }
}

/// Node operation failures.
#[derive(Clone, Debug)]
pub enum NodeError {
    /// Transaction invalid against the current state.
    Tx(TxError),
    /// A mainchain block could not be referenced.
    McRef(McRefError),
    /// The observed MC block does not extend the last referenced one.
    NonContiguousMcBlock {
        /// Expected parent.
        expected: Digest32,
        /// Found parent.
        found: Digest32,
    },
    /// Proof generation failed (a bug or inconsistent state).
    Prove(ProveError),
    /// Certificate requested before the epoch's last MC block.
    EpochNotComplete,
    /// No data available to serve the request.
    Unavailable(&'static str),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Tx(e) => write!(f, "transaction rejected: {e}"),
            NodeError::McRef(e) => write!(f, "mainchain reference: {e}"),
            NodeError::NonContiguousMcBlock { expected, found } => {
                write!(f, "MC block parent {found}, expected {expected}")
            }
            NodeError::Prove(e) => write!(f, "proving failed: {e}"),
            NodeError::EpochNotComplete => write!(f, "withdrawal epoch not complete"),
            NodeError::Unavailable(what) => write!(f, "unavailable: {what}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<TxError> for NodeError {
    fn from(e: TxError) -> Self {
        NodeError::Tx(e)
    }
}

impl From<McRefError> for NodeError {
    fn from(e: McRefError) -> Self {
        NodeError::McRef(e)
    }
}

impl From<ProveError> for NodeError {
    fn from(e: ProveError) -> Self {
        NodeError::Prove(e)
    }
}

/// Snapshot for mainchain-reorg rollback.
#[derive(Clone)]
struct NodeSnapshot {
    state: SidechainState,
    epoch_builder: EpochProofBuilder,
    last_mc_ref: Digest32,
    epoch_mc_headers: Vec<zendoo_mainchain::BlockHeader>,
    epoch_sc_headers: Vec<ScBlockHeader>,
    chain_len: usize,
    slot: u64,
    current_epoch: EpochId,
    /// Certificate inclusions observed so far. An MC reorg can
    /// disconnect the very block that carried a certificate; a
    /// rollback that kept the stale inclusion would later prove a
    /// certificate against a window that no longer carries it.
    cert_inclusions: BTreeMap<EpochId, CertInclusion>,
}

/// A Latus full node / forger.
pub struct LatusNode {
    params: LatusParams,
    schedule: EpochSchedule,
    consensus: ConsensusParams,
    keys: Arc<LatusKeys>,
    forger: Keypair,
    state: SidechainState,
    chain: Vec<ScBlock>,
    /// Pre-block snapshots keyed by the MC block each SC block
    /// references (for MC-reorg rollback).
    snapshots: Vec<NodeSnapshot>,
    pending: Vec<ScTransaction>,
    epoch_builder: EpochProofBuilder,
    current_epoch: EpochId,
    last_mc_ref: Digest32,
    epoch_mc_headers: Vec<zendoo_mainchain::BlockHeader>,
    epoch_sc_headers: Vec<ScBlockHeader>,
    /// Certificate inclusions observed in MC blocks, per epoch.
    cert_inclusions: BTreeMap<EpochId, CertInclusion>,
    /// MST snapshot at each epoch close (serves BTR/CSW proofs).
    epoch_msts: BTreeMap<EpochId, Mst>,
    /// Delta committed per closed epoch (serves historical CSW proofs).
    epoch_deltas: BTreeMap<EpochId, MstDelta>,
    /// The certificate this node produced per epoch.
    produced_certs: BTreeMap<EpochId, WithdrawalCertificate>,
    stake: StakeDistribution,
    stake_epoch: u64,
    next_slot: u64,
    /// Outbound cross-chain transfers awaiting declaration in a
    /// certificate (their escrow withdrawals sit in `pending`/state).
    pending_cross: Vec<CrossChainTransfer>,
    /// Monotonic nonce for outbound cross-chain transfers.
    xct_nonce: u64,
}

impl LatusNode {
    /// Creates a node for a freshly bootstrapped sidechain.
    ///
    /// `mc_anchor` is the hash of the MC block at `start_block - 1`
    /// (the block every reference chain starts from); pass the genesis
    /// hash when `start_block` is 1.
    pub fn new(
        params: LatusParams,
        schedule: EpochSchedule,
        consensus: ConsensusParams,
        keys: Arc<LatusKeys>,
        forger: Keypair,
        mc_anchor: Digest32,
    ) -> Self {
        let state = SidechainState::new(params.mst_depth);
        let epoch_builder = EpochProofBuilder::new(state.digest());
        LatusNode {
            params,
            schedule,
            consensus,
            keys,
            forger,
            state,
            chain: Vec::new(),
            snapshots: Vec::new(),
            pending: Vec::new(),
            epoch_builder,
            current_epoch: 0,
            last_mc_ref: mc_anchor,
            epoch_mc_headers: Vec::new(),
            epoch_sc_headers: Vec::new(),
            cert_inclusions: BTreeMap::new(),
            epoch_msts: BTreeMap::new(),
            epoch_deltas: BTreeMap::new(),
            produced_certs: BTreeMap::new(),
            stake: StakeDistribution::default(),
            stake_epoch: 0,
            next_slot: 0,
            pending_cross: Vec::new(),
            xct_nonce: 0,
        }
    }

    /// The node's sidechain state.
    pub fn state(&self) -> &SidechainState {
        &self.state
    }

    /// The deployment parameters.
    pub fn params(&self) -> &LatusParams {
        &self.params
    }

    /// The sidechain blocks forged/accepted so far.
    pub fn chain(&self) -> &[ScBlock] {
        &self.chain
    }

    /// The withdrawal epoch currently being filled.
    pub fn current_epoch(&self) -> EpochId {
        self.current_epoch
    }

    /// The forger's address (stake identity).
    pub fn forger_address(&self) -> Address {
        Address::from_public_key(&self.forger.public)
    }

    /// Queues a user transaction after validating it against the current
    /// state.
    ///
    /// # Errors
    ///
    /// [`NodeError::Tx`] when invalid, or [`NodeError::Unavailable`]
    /// for direct withdrawals to the cross-chain escrow address (which
    /// would break the certificate's escrow-pairing rule — the
    /// mainchain mints escrow BTs as consensus-tagged escrow-kind
    /// UTXOs, so an unpaired one would strand the coins; use
    /// [`LatusNode::submit_cross_transfer`] instead).
    pub fn submit_transaction(&mut self, tx: ScTransaction) -> Result<(), NodeError> {
        if let ScTransaction::BackwardTransfer(bt) = &tx {
            let escrow = escrow_address();
            if bt.backward_transfers.iter().any(|w| w.receiver == escrow) {
                return Err(NodeError::Unavailable(
                    "withdrawals to the escrow address must go through submit_cross_transfer",
                ));
            }
        }
        let mut scratch = self.state.clone();
        apply_transaction(&self.params, &mut scratch, &tx)?;
        self.pending.push(tx);
        Ok(())
    }

    /// Initiates a sidechain→sidechain transfer: spends `inputs`
    /// (owned by one key) into an escrow withdrawal of exactly `amount`
    /// and registers the [`CrossChainTransfer`] for declaration in this
    /// epoch's certificate. When the inputs exceed `amount`, a change
    /// split payment precedes the escrow withdrawal in the same block.
    ///
    /// # Errors
    ///
    /// [`NodeError::Tx`] when the inputs don't cover `amount` or fail
    /// validation.
    pub fn submit_cross_transfer(
        &mut self,
        inputs: Vec<(crate::mst::Utxo, &SecretKey)>,
        amount: Amount,
        dest: SidechainId,
        receiver: Address,
        payback: Address,
    ) -> Result<CrossChainTransfer, NodeError> {
        if inputs.is_empty() {
            return Err(NodeError::Tx(TxError::NoInputs));
        }
        if dest == self.params.sidechain_id {
            return Err(NodeError::Unavailable(
                "cross-chain transfer cannot target its own sidechain",
            ));
        }
        if amount.is_zero() {
            return Err(NodeError::Unavailable("cross-chain transfer of zero coins"));
        }
        let total = Amount::checked_sum(inputs.iter().map(|(u, _)| u.amount))
            .ok_or(NodeError::Tx(TxError::AmountOverflow))?;
        if total < amount {
            return Err(NodeError::Tx(TxError::ValueImbalance {
                input: total,
                output: amount,
            }));
        }
        let escrow = escrow_address();
        let xct = CrossChainTransfer::new(
            self.params.sidechain_id,
            dest,
            receiver,
            amount,
            self.xct_nonce,
            payback,
        );

        let mut txs = Vec::with_capacity(2);
        if total == amount {
            txs.push(ScTransaction::BackwardTransfer(BackwardTransferTx::create(
                inputs,
                vec![(escrow, amount)],
            )));
        } else {
            // Split change back to the sender on the sidechain, then
            // escrow the exact-amount output.
            let owner_address = inputs[0].0.address;
            let owner_key = inputs[0].1;
            let change = total.checked_sub(amount).expect("total >= amount");
            let split = PaymentTx::create(
                inputs,
                vec![(owner_address, amount), (owner_address, change)],
            );
            let exact = split.outputs[0];
            txs.push(ScTransaction::Payment(split));
            txs.push(ScTransaction::BackwardTransfer(BackwardTransferTx::create(
                vec![(exact, owner_key)],
                vec![(escrow, amount)],
            )));
        }
        // Chained validation against the state *with the pending queue
        // applied*: the escrow withdrawal may spend the split payment's
        // output, and a conflict with an earlier pending transaction
        // (e.g. two same-tick transfers racing for one UTXO) must fail
        // here — a silently forge-dropped escrow would leave a stale
        // declared transfer behind. Pending transactions that would be
        // dropped at forge are skipped, mirroring the forger.
        let mut scratch = self.state.clone();
        for tx in &self.pending {
            let _ = apply_transaction(&self.params, &mut scratch, tx);
        }
        for tx in &txs {
            apply_transaction(&self.params, &mut scratch, tx)?;
        }
        self.pending.extend(txs);
        self.pending_cross.push(xct);
        self.xct_nonce += 1;
        Ok(xct)
    }

    /// Outbound cross-chain transfers not yet declared in a certificate.
    pub fn pending_cross_transfers(&self) -> &[CrossChainTransfer] {
        &self.pending_cross
    }

    /// Inbound cross-chain transfers credited on this sidechain.
    pub fn inbound_cross_transfers(&self) -> &[InboundCrossTransfer] {
        self.state.inbound_cross_transfers()
    }

    /// Observes the next mainchain block: forges the sidechain block
    /// referencing it (with any pending transactions), applies it, and
    /// tracks withdrawal-epoch boundaries (Fig 6/7).
    ///
    /// Returns the forged block.
    ///
    /// # Errors
    ///
    /// [`NodeError`] on non-contiguous MC blocks or malformed data.
    pub fn sync_mainchain_block(
        &mut self,
        mc_block: &zendoo_mainchain::Block,
    ) -> Result<ScBlock, NodeError> {
        if mc_block.header.parent != self.last_mc_ref {
            return Err(NodeError::NonContiguousMcBlock {
                expected: self.last_mc_ref,
                found: mc_block.header.parent,
            });
        }
        let reference = McBlockReference::derive(mc_block, &self.params.sidechain_id)?;

        // The rollback snapshot must describe the node *before* this
        // block, including which certificate inclusions it had seen.
        let pre_sync_inclusions = self.cert_inclusions.clone();

        // Record any certificate inclusion observed on the MC.
        if let Some((cert, proof)) = &reference.wcert {
            self.cert_inclusions.insert(
                cert.epoch_id,
                CertInclusion {
                    certificate: cert.clone(),
                    mc_header: mc_block.header,
                    inclusion: proof.clone(),
                },
            );
        }

        // Refresh the stake snapshot at consensus-epoch boundaries.
        let slot_epoch = self.consensus.epoch_of_slot(self.next_slot);
        if slot_epoch != self.stake_epoch || (self.chain.is_empty() && self.stake.is_empty()) {
            self.stake = StakeDistribution::snapshot(&self.state);
            self.stake_epoch = slot_epoch;
        }

        // Find the forging slot (slot leadership lottery, §5.1).
        let leadership = self.find_leading_slot()?;

        // Snapshot for rollback, then build the block.
        let snapshot = NodeSnapshot {
            state: self.state.clone(),
            epoch_builder: self.epoch_builder.clone(),
            last_mc_ref: self.last_mc_ref,
            epoch_mc_headers: self.epoch_mc_headers.clone(),
            epoch_sc_headers: self.epoch_sc_headers.clone(),
            chain_len: self.chain.len(),
            slot: self.next_slot,
            current_epoch: self.current_epoch,
            cert_inclusions: pre_sync_inclusions,
        };

        let transactions = std::mem::take(&mut self.pending);
        let result = self.forge_and_apply(reference, mc_block, transactions, leadership);
        match result {
            Ok(block) => {
                self.snapshots.push(snapshot);
                Ok(block)
            }
            Err(e) => {
                // Restore exactly (application mutates state lazily).
                self.state = snapshot.state;
                self.epoch_builder = snapshot.epoch_builder;
                self.last_mc_ref = snapshot.last_mc_ref;
                self.epoch_mc_headers = snapshot.epoch_mc_headers;
                self.epoch_sc_headers = snapshot.epoch_sc_headers;
                self.chain.truncate(snapshot.chain_len);
                self.next_slot = snapshot.slot;
                Err(e)
            }
        }
    }

    fn find_leading_slot(&mut self) -> Result<LeadershipProof, NodeError> {
        // The bootstrap authority (and anyone, while the chain is
        // entirely unstaked) forges without winning the lottery; the
        // VRF proof is still produced for auditability.
        if self.consensus.is_bootstrap_forger(&self.forger.public) || self.stake.total().is_zero() {
            let slot = self.next_slot;
            self.next_slot += 1;
            let (output, proof) =
                zendoo_primitives::vrf::prove(&self.forger.secret, &slot.to_be_bytes());
            return Ok(LeadershipProof {
                slot,
                output,
                proof,
            });
        }
        // Staked forgers search forward for a leading slot (expected
        // 1/φ(α) tries); a forger without stake never leads.
        for _ in 0..100_000u32 {
            let slot = self.next_slot;
            self.next_slot += 1;
            if let Some(leadership) =
                try_lead_slot(&self.consensus, &self.stake, &self.forger.secret, slot)
            {
                return Ok(leadership);
            }
        }
        Err(NodeError::Unavailable(
            "forger holds no stake and never wins a slot",
        ))
    }

    fn forge_and_apply(
        &mut self,
        reference: McBlockReference,
        mc_block: &zendoo_mainchain::Block,
        transactions: Vec<ScTransaction>,
        leadership: LeadershipProof,
    ) -> Result<ScBlock, NodeError> {
        let parent = self
            .chain
            .last()
            .map(|b| b.hash())
            .unwrap_or(Digest32::ZERO);
        let height = self.chain.len() as u64;

        // The synchronized halves are mandatory; their failure aborts
        // the block (the MC reference itself is malformed).
        let mut recorded = Vec::new();
        let sync_txs = [
            ScTransaction::ForwardTransfers(reference.forward_transfers.clone()),
            ScTransaction::BackwardTransferRequests(reference.backward_transfer_requests.clone()),
        ];
        for tx in &sync_txs {
            let witness = apply_transaction(&self.params, &mut self.state, tx)?;
            recorded.push((witness, self.state.digest()));
        }

        // Pending user transactions: conflicts (e.g. two payments racing
        // for one UTXO) are dropped, as a production forger would.
        let mut included = Vec::new();
        for tx in transactions {
            match apply_transaction(&self.params, &mut self.state, &tx) {
                Ok(witness) => {
                    recorded.push((witness, self.state.digest()));
                    included.push(tx);
                }
                Err(_) => { /* dropped from this block */ }
            }
        }

        let mut block = ScBlock {
            header: ScBlockHeader {
                parent,
                height,
                slot: leadership.slot,
                forger: self.forger.public,
                vrf_proof: leadership.proof,
                tx_root: Digest32::ZERO,
                mc_ref_hashes: vec![reference.mc_block_hash()],
                state_digest: self.state.digest(),
            },
            mc_references: vec![reference],
            transactions: included,
        };
        block.header.tx_root = block.compute_tx_root();

        for (witness, digest) in recorded {
            self.epoch_builder.record(witness, digest);
        }
        self.last_mc_ref = block.mc_references[0].mc_block_hash();
        self.epoch_mc_headers.push(mc_block.header);
        self.epoch_sc_headers.push(block.header.clone());
        self.chain.push(block.clone());
        Ok(block)
    }

    /// Validates and adopts a block forged by *another* node (the
    /// validator path): checks chain linkage, the 1:1 MC reference
    /// discipline, VRF slot leadership against the epoch's stake
    /// snapshot, and full stateful validity — recording the transition
    /// witnesses so this node can also serve proofs and certificates.
    ///
    /// # Errors
    ///
    /// [`NodeError`] naming the violated rule; the node state is
    /// unchanged on error.
    pub fn receive_block(
        &mut self,
        block: &ScBlock,
        mc_block: &zendoo_mainchain::Block,
    ) -> Result<(), NodeError> {
        if mc_block.header.parent != self.last_mc_ref {
            return Err(NodeError::NonContiguousMcBlock {
                expected: self.last_mc_ref,
                found: mc_block.header.parent,
            });
        }
        // Header linkage.
        let expected_parent = self
            .chain
            .last()
            .map(|b| b.hash())
            .unwrap_or(Digest32::ZERO);
        if block.header.parent != expected_parent || block.header.height != self.chain.len() as u64
        {
            return Err(NodeError::Unavailable("block does not extend our tip"));
        }
        if block.header.mc_ref_hashes != vec![mc_block.hash()] {
            return Err(NodeError::Unavailable(
                "block must reference exactly the observed MC block",
            ));
        }
        // Refresh the stake snapshot exactly as the forging path does,
        // then verify the forger's slot leadership (vacuous while the
        // chain is unstaked — the bootstrap authority window).
        let slot_epoch = self.consensus.epoch_of_slot(self.next_slot);
        if slot_epoch != self.stake_epoch || (self.chain.is_empty() && self.stake.is_empty()) {
            self.stake = StakeDistribution::snapshot(&self.state);
            self.stake_epoch = slot_epoch;
        }
        let leadership_ok = self.consensus.is_bootstrap_forger(&block.header.forger)
            || self.stake.total().is_zero()
            || crate::consensus::verify_block_leadership(
                &self.consensus,
                &self.stake,
                &block.header.forger,
                block.header.slot,
                &block.header.vrf_proof,
            );
        if !leadership_ok {
            return Err(NodeError::Unavailable("invalid slot leadership"));
        }

        // Stateful validation on a scratch state, then adopt.
        let mut scratch = self.state.clone();
        let witnesses =
            crate::block::apply_block(&self.params, &mut scratch, block, self.last_mc_ref)
                .map_err(|_| NodeError::Unavailable("block failed stateful validation"))?;

        let snapshot = NodeSnapshot {
            state: self.state.clone(),
            epoch_builder: self.epoch_builder.clone(),
            last_mc_ref: self.last_mc_ref,
            epoch_mc_headers: self.epoch_mc_headers.clone(),
            epoch_sc_headers: self.epoch_sc_headers.clone(),
            chain_len: self.chain.len(),
            slot: self.next_slot,
            current_epoch: self.current_epoch,
            cert_inclusions: self.cert_inclusions.clone(),
        };
        // Re-apply on the live state to obtain per-step digests (the
        // scratch run already guaranteed success).
        let mut recorded = Vec::with_capacity(witnesses.len());
        for tx in block.ordered_transactions() {
            let witness = apply_transaction(&self.params, &mut self.state, &tx)
                .expect("validated on scratch state");
            recorded.push((witness, self.state.digest()));
        }
        for (witness, digest) in recorded {
            self.epoch_builder.record(witness, digest);
        }
        // Track certificate inclusions observed in the reference.
        for reference in &block.mc_references {
            if let Some((cert, proof)) = &reference.wcert {
                self.cert_inclusions.insert(
                    cert.epoch_id,
                    CertInclusion {
                        certificate: cert.clone(),
                        mc_header: mc_block.header,
                        inclusion: proof.clone(),
                    },
                );
            }
        }
        self.last_mc_ref = mc_block.hash();
        self.epoch_mc_headers.push(mc_block.header);
        self.epoch_sc_headers.push(block.header.clone());
        self.chain.push(block.clone());
        self.next_slot = block.header.slot + 1;
        self.snapshots.push(snapshot);
        Ok(())
    }

    /// Returns `true` if the node has referenced the last MC block of
    /// the current withdrawal epoch and can produce its certificate.
    pub fn epoch_complete(&self) -> bool {
        self.epoch_mc_headers.len() == self.schedule.epoch_len() as usize
    }

    /// Closes the current withdrawal epoch: generates the recursive
    /// epoch proof, wraps it in the certificate SNARK, resets the
    /// transient state, and returns the certificate ready for MC
    /// submission (§5.5.3.1).
    ///
    /// # Errors
    ///
    /// [`NodeError::EpochNotComplete`] before the boundary;
    /// [`NodeError::Prove`] if any witness is inconsistent.
    pub fn produce_certificate(&mut self) -> Result<WithdrawalCertificate, NodeError> {
        if !self.epoch_complete() {
            return Err(NodeError::EpochNotComplete);
        }
        let epoch = self.current_epoch;
        let last_sc = self
            .epoch_sc_headers
            .last()
            .ok_or(NodeError::Unavailable("no SC blocks this epoch"))?
            .clone();

        // Previous-epoch anchors.
        let (prev_mst_root, prev_sc_block) = if epoch == 0 {
            (Mst::new(self.params.mst_depth).root(), Digest32::ZERO)
        } else {
            let prev_cert = self
                .produced_certs
                .get(&(epoch - 1))
                .ok_or(NodeError::Unavailable("previous certificate unknown"))?;
            let (sc_block, root, _) = crate::cert::parse_wcert_proofdata(&prev_cert.proofdata)
                .ok_or(NodeError::Unavailable("previous proofdata unparseable"))?;
            (root, sc_block)
        };

        // The previous certificate's MC inclusion anchors this epoch's
        // recursion. Resolve it *before* any destructive step: a node
        // that never observed it (the certificate was reorged away or
        // never mined) must fail with its transients intact, so that a
        // late-arriving inclusion still lets the next attempt prove
        // against a consistent pre-state.
        let prev_cert_inclusion = if epoch == 0 {
            None
        } else {
            Some(
                self.cert_inclusions
                    .get(&(epoch - 1))
                    .ok_or(NodeError::Unavailable(
                        "previous certificate inclusion not observed on MC",
                    ))?
                    .clone(),
            )
        };

        // The recursive proof over the epoch (Fig 11).
        let state_proof = self.epoch_builder.prove(&self.keys.system)?;

        // Pair pending cross-chain transfers with the epoch's escrow
        // withdrawals, in BT-list order, *before* the destructive epoch
        // close — a pairing failure must leave the node state intact.
        // Transfers whose escrow did not land this epoch stay pending
        // for the next certificate. (An escrow withdrawal with no
        // declared transfer cannot arise through this node's own API —
        // `submit_transaction` rejects direct escrow withdrawals — but
        // a block from a hostile forger could carry one; failing here
        // without touching state keeps the error recoverable.)
        let escrow = escrow_address();
        let mut declared = Vec::new();
        let mut used = Vec::new();
        for bt in self
            .state
            .backward_transfers()
            .iter()
            .filter(|bt| bt.receiver == escrow)
        {
            let matched = self
                .pending_cross
                .iter()
                .enumerate()
                .find(|(i, xct)| !used.contains(i) && xct.amount == bt.amount);
            match matched {
                Some((i, xct)) => {
                    used.push(i);
                    declared.push(*xct);
                }
                None => {
                    return Err(NodeError::Unavailable(
                        "escrow withdrawal without a declared cross-chain transfer",
                    ));
                }
            }
        }
        used.sort_unstable();
        for i in used.into_iter().rev() {
            self.pending_cross.remove(i);
        }

        // Close the epoch's transients.
        let final_mst_root = self.state.mst().root();
        let (bt_list, delta, touch_sequence) = self.state.end_epoch();

        let proofdata = wcert_proofdata(last_sc.hash(), final_mst_root, &delta, &declared);
        let mut cert = WithdrawalCertificate {
            sidechain_id: self.params.sidechain_id,
            epoch_id: epoch,
            quality: last_sc.height,
            bt_list: bt_list.clone(),
            proofdata,
            proof: zendoo_snark::backend::Proof::from_bytes(&[0u8; 65])
                .expect("zero proof placeholder"),
        };

        let prev_mc_end = self.epoch_mc_headers[0].parent;
        let mc_end = self.epoch_mc_headers.last().expect("epoch complete").hash();
        let sysdata = WcertSysData::for_certificate(&cert, prev_mc_end, mc_end);
        let public = wcert_public_inputs(&sysdata, &cert.proofdata.merkle_root());

        let witness = WcertWitness {
            epoch_id: epoch,
            sc_headers: std::mem::take(&mut self.epoch_sc_headers),
            prev_sc_block,
            mc_headers: std::mem::take(&mut self.epoch_mc_headers),
            state_proof,
            prev_mst_root,
            final_mst_root,
            bt_list,
            delta: delta.clone(),
            touch_sequence,
            prev_cert: prev_cert_inclusion,
            declared,
        };
        cert.proof = prove(
            &self.keys.wcert_pk,
            &self.keys.wcert_circuit,
            &public,
            &witness,
        )?;

        // Archive per-epoch material for user proof services.
        self.epoch_msts.insert(epoch, self.state.mst().clone());
        self.epoch_deltas.insert(epoch, delta);
        self.produced_certs.insert(epoch, cert.clone());

        // Open the next epoch; the stake distribution for its slots is
        // fixed now ("SD is fixed before the epoch begins", §5.1).
        self.current_epoch += 1;
        self.epoch_builder = EpochProofBuilder::new(self.state.digest());
        self.stake = StakeDistribution::snapshot(&self.state);
        Ok(cert)
    }

    /// The certificate this node produced for `epoch`, if any.
    pub fn certificate_for(&self, epoch: EpochId) -> Option<&WithdrawalCertificate> {
        self.produced_certs.get(&epoch)
    }

    /// The certificate inclusion observed on the MC for `epoch`.
    pub fn cert_inclusion_for(&self, epoch: EpochId) -> Option<&CertInclusion> {
        self.cert_inclusions.get(&epoch)
    }

    /// Builds a fully proven BTR for a UTXO committed by the certificate
    /// of `anchor_epoch` (§5.5.3.2). The caller submits it to the MC.
    ///
    /// # Errors
    ///
    /// [`NodeError::Unavailable`] when the anchor material is missing;
    /// [`NodeError::Prove`] if the statement does not hold.
    pub fn create_btr(
        &self,
        anchor_epoch: EpochId,
        utxo: &Utxo,
        owner: &SecretKey,
        receiver: Address,
    ) -> Result<BackwardTransferRequest, NodeError> {
        let witness = self.ownership_witness("btr", anchor_epoch, utxo, owner, receiver)?;
        let anchor_block = witness.anchor_cert.mc_header.hash();
        let btr = BackwardTransferRequest {
            sidechain_id: self.params.sidechain_id,
            receiver,
            amount: utxo.amount,
            nullifier: utxo.nullifier(),
            proofdata: utxo_proofdata(utxo),
            proof: {
                let sysdata = BtrSysData {
                    last_cert_block: anchor_block,
                    nullifier: utxo.nullifier(),
                    receiver,
                    amount: utxo.amount,
                };
                let public = btr_public_inputs(&sysdata, &utxo_proofdata(utxo).merkle_root());
                prove(&self.keys.btr_pk, &self.keys.btr_circuit, &public, &witness)?
            },
        };
        Ok(btr)
    }

    /// Builds a fully proven CSW against the certificate of
    /// `anchor_epoch` (§5.5.3.3, direct mode).
    ///
    /// # Errors
    ///
    /// As for [`LatusNode::create_btr`].
    pub fn create_csw(
        &self,
        anchor_epoch: EpochId,
        utxo: &Utxo,
        owner: &SecretKey,
        receiver: Address,
    ) -> Result<CeasedSidechainWithdrawal, NodeError> {
        let witness = self.ownership_witness("csw", anchor_epoch, utxo, owner, receiver)?;
        let anchor_block = witness.anchor_cert.mc_header.hash();
        self.build_csw(utxo, receiver, anchor_block, CswWitness::Direct(witness))
    }

    /// Builds a historical CSW: ownership proven at `anchor_epoch`, then
    /// `mst_delta` links up to `latest_epoch` showing the slot untouched
    /// (Appendix A — works even if later states were withheld).
    ///
    /// # Errors
    ///
    /// As for [`LatusNode::create_btr`].
    pub fn create_historical_csw(
        &self,
        anchor_epoch: EpochId,
        latest_epoch: EpochId,
        utxo: &Utxo,
        owner: &SecretKey,
        receiver: Address,
        later_deltas: &BTreeMap<EpochId, MstDelta>,
    ) -> Result<CeasedSidechainWithdrawal, NodeError> {
        let base = self.ownership_witness("csw", anchor_epoch, utxo, owner, receiver)?;
        let mut later = Vec::new();
        for epoch in (anchor_epoch + 1)..=latest_epoch {
            let cert = self
                .cert_inclusions
                .get(&epoch)
                .ok_or(NodeError::Unavailable("later certificate inclusion"))?
                .clone();
            let delta = later_deltas
                .get(&epoch)
                .ok_or(NodeError::Unavailable("later delta"))?
                .clone();
            later.push(DeltaLink { cert, delta });
        }
        let anchor_block = later
            .last()
            .map(|l| l.cert.mc_header.hash())
            .ok_or(NodeError::Unavailable("historical mode needs later epochs"))?;
        self.build_csw(
            utxo,
            receiver,
            anchor_block,
            CswWitness::Historical { base, later },
        )
    }

    fn build_csw(
        &self,
        utxo: &Utxo,
        receiver: Address,
        anchor_block: Digest32,
        witness: CswWitness,
    ) -> Result<CeasedSidechainWithdrawal, NodeError> {
        let sysdata = BtrSysData {
            last_cert_block: anchor_block,
            nullifier: utxo.nullifier(),
            receiver,
            amount: utxo.amount,
        };
        let public = btr_public_inputs(&sysdata, &utxo_proofdata(utxo).merkle_root());
        let proof = prove(&self.keys.csw_pk, &self.keys.csw_circuit, &public, &witness)?;
        Ok(CeasedSidechainWithdrawal {
            sidechain_id: self.params.sidechain_id,
            receiver,
            amount: utxo.amount,
            nullifier: utxo.nullifier(),
            proofdata: utxo_proofdata(utxo),
            proof,
        })
    }

    fn ownership_witness(
        &self,
        domain: &str,
        anchor_epoch: EpochId,
        utxo: &Utxo,
        owner: &SecretKey,
        receiver: Address,
    ) -> Result<OwnershipWitness, NodeError> {
        let mst = self
            .epoch_msts
            .get(&anchor_epoch)
            .ok_or(NodeError::Unavailable("epoch MST snapshot"))?;
        let anchor_cert = self
            .cert_inclusions
            .get(&anchor_epoch)
            .ok_or(NodeError::Unavailable("anchor certificate inclusion"))?
            .clone();
        let position = mst_position(utxo, self.params.mst_depth);
        let mst_proof = mst.proof(position);
        let anchor_block = anchor_cert.mc_header.hash();
        let authorization = sign_withdrawal(domain, owner, utxo, &receiver, &anchor_block);
        Ok(OwnershipWitness {
            utxo: *utxo,
            owner: owner.public_key(),
            authorization,
            mst_proof,
            anchor_cert,
        })
    }

    /// The delta committed for a closed epoch (what an honest node
    /// publishes; users collect these for historical proofs).
    pub fn epoch_delta(&self, epoch: EpochId) -> Option<&MstDelta> {
        self.epoch_deltas.get(&epoch)
    }

    /// Rolls the node back so that the last referenced MC block is
    /// `mc_hash` (mainchain fork resolution, §5.1: "SC blocks that refer
    /// to forked blocks in the MC would also be reverted").
    ///
    /// Returns the number of SC blocks reverted.
    ///
    /// # Errors
    ///
    /// [`NodeError::Unavailable`] when the target was never referenced.
    pub fn rollback_to_mc(&mut self, mc_hash: &Digest32) -> Result<usize, NodeError> {
        if self.last_mc_ref == *mc_hash {
            return Ok(0);
        }
        // Find the snapshot whose last_mc_ref matches.
        let target = self
            .snapshots
            .iter()
            .rposition(|s| s.last_mc_ref == *mc_hash)
            .ok_or(NodeError::Unavailable("rollback target not in history"))?;
        let snapshot = self.snapshots[target].clone();
        let reverted = self.chain.len() - snapshot.chain_len;
        self.state = snapshot.state;
        self.epoch_builder = snapshot.epoch_builder;
        self.last_mc_ref = snapshot.last_mc_ref;
        self.epoch_mc_headers = snapshot.epoch_mc_headers;
        self.epoch_sc_headers = snapshot.epoch_sc_headers;
        self.chain.truncate(snapshot.chain_len);
        self.next_slot = snapshot.slot;
        // Un-observe everything the disconnected blocks taught us: a
        // certificate inclusion carried only by a reverted block must
        // not anchor a later proof, and if the rollback crosses an
        // epoch boundary, the closed epoch reopens — its archived
        // certificate, MST and delta describe a history that no longer
        // happened.
        self.cert_inclusions = snapshot.cert_inclusions;
        if snapshot.current_epoch < self.current_epoch {
            self.current_epoch = snapshot.current_epoch;
            self.produced_certs.split_off(&snapshot.current_epoch);
            self.epoch_msts.split_off(&snapshot.current_epoch);
            self.epoch_deltas.split_off(&snapshot.current_epoch);
        }
        self.snapshots.truncate(target);
        Ok(reverted)
    }

    /// Spendable UTXOs of an address in the current state.
    pub fn utxos_of(&self, address: &Address) -> Vec<Utxo> {
        self.state
            .mst()
            .owned_by(address)
            .into_iter()
            .map(|(_, u)| u)
            .collect()
    }

    /// Balance of an address in the current state.
    pub fn balance_of(&self, address: &Address) -> Amount {
        self.state.balance_of(address)
    }
}

impl std::fmt::Debug for LatusNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatusNode")
            .field("sidechain", &self.params.sidechain_id)
            .field("height", &self.chain.len())
            .field("epoch", &self.current_epoch)
            .field("utxos", &self.state.mst().len())
            .finish()
    }
}
