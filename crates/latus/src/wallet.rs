//! A sidechain wallet: key management, coin selection and transaction
//! construction for Latus users.

use zendoo_core::ids::{Address, Amount};
use zendoo_primitives::schnorr::Keypair;

use crate::mst::Utxo;
use crate::state::SidechainState;
use crate::tx::{BackwardTransferTx, PaymentTx, ScTransaction};

/// Wallet operation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScWalletError {
    /// Spendable funds below the requested amount.
    InsufficientFunds {
        /// Requested amount.
        requested: Amount,
        /// Spendable balance.
        available: Amount,
    },
}

impl std::fmt::Display for ScWalletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScWalletError::InsufficientFunds {
                requested,
                available,
            } => write!(
                f,
                "insufficient sidechain funds: requested {requested}, available {available}"
            ),
        }
    }
}

impl std::error::Error for ScWalletError {}

/// A single-key Latus wallet.
///
/// # Examples
///
/// ```
/// use zendoo_latus::wallet::ScWallet;
///
/// let wallet = ScWallet::from_seed(b"alice");
/// assert_eq!(wallet.address(), ScWallet::from_seed(b"alice").address());
/// ```
#[derive(Clone, Debug)]
pub struct ScWallet {
    keypair: Keypair,
    address: Address,
}

impl ScWallet {
    /// Creates a wallet from a deterministic seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        let keypair = Keypair::from_seed(seed);
        let address = Address::from_public_key(&keypair.public);
        ScWallet { keypair, address }
    }

    /// Creates a wallet with a random key.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let keypair = Keypair::random(rng);
        let address = Address::from_public_key(&keypair.public);
        ScWallet { keypair, address }
    }

    /// The wallet's sidechain address.
    pub fn address(&self) -> Address {
        self.address
    }

    /// The underlying keypair (for BTR/CSW authorization).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    /// Spendable balance in `state`.
    pub fn balance(&self, state: &SidechainState) -> Amount {
        state.balance_of(&self.address)
    }

    /// Largest-first coin selection covering `target`.
    fn select(
        &self,
        state: &SidechainState,
        target: Amount,
    ) -> Result<(Vec<Utxo>, Amount), ScWalletError> {
        let mut coins: Vec<Utxo> = state
            .mst()
            .owned_by(&self.address)
            .into_iter()
            .map(|(_, u)| u)
            .collect();
        coins.sort_by(|a, b| b.amount.cmp(&a.amount));
        let mut selected = Vec::new();
        let mut total = Amount::ZERO;
        for coin in coins {
            if total >= target {
                break;
            }
            total = total
                .checked_add(coin.amount)
                .expect("sidechain supply fits in u64");
            selected.push(coin);
        }
        if total < target {
            return Err(ScWalletError::InsufficientFunds {
                requested: target,
                available: total,
            });
        }
        Ok((selected, total))
    }

    /// Builds a signed payment of `amount` to `recipient` with change
    /// back to this wallet (§5.3.1).
    ///
    /// # Errors
    ///
    /// [`ScWalletError::InsufficientFunds`].
    pub fn pay(
        &self,
        state: &SidechainState,
        recipient: Address,
        amount: Amount,
    ) -> Result<ScTransaction, ScWalletError> {
        let (selected, total) = self.select(state, amount)?;
        let mut outputs = vec![(recipient, amount)];
        let change = total.checked_sub(amount).expect("selection covers");
        if !change.is_zero() {
            outputs.push((self.address, change));
        }
        let inputs: Vec<(Utxo, &zendoo_primitives::schnorr::SecretKey)> = selected
            .iter()
            .map(|u| (*u, &self.keypair.secret))
            .collect();
        Ok(ScTransaction::Payment(PaymentTx::create(inputs, outputs)))
    }

    /// Builds a signed withdrawal of `amount` to the mainchain address
    /// `mc_receiver` (§5.3.3). Change — a backward-transfer transaction
    /// has no sidechain outputs — is refunded to `mc_receiver` as a
    /// second backward transfer.
    ///
    /// # Errors
    ///
    /// [`ScWalletError::InsufficientFunds`].
    pub fn withdraw(
        &self,
        state: &SidechainState,
        mc_receiver: Address,
        amount: Amount,
    ) -> Result<ScTransaction, ScWalletError> {
        let (selected, total) = self.select(state, amount)?;
        let mut withdrawals = vec![(mc_receiver, amount)];
        let change = total.checked_sub(amount).expect("selection covers");
        if !change.is_zero() {
            withdrawals.push((mc_receiver, change));
        }
        let inputs: Vec<(Utxo, &zendoo_primitives::schnorr::SecretKey)> = selected
            .iter()
            .map(|u| (*u, &self.keypair.secret))
            .collect();
        Ok(ScTransaction::BackwardTransfer(BackwardTransferTx::create(
            inputs,
            withdrawals,
        )))
    }

    /// Builds an exact-UTXO withdrawal (no change): spends whole
    /// selected coins, withdrawing their exact sum. Useful where the
    /// caller wants to keep value on the sidechain.
    ///
    /// # Errors
    ///
    /// [`ScWalletError::InsufficientFunds`] if no coin covers the
    /// request.
    pub fn withdraw_utxo(&self, utxo: &Utxo, mc_receiver: Address) -> ScTransaction {
        ScTransaction::BackwardTransfer(BackwardTransferTx::create(
            vec![(*utxo, &self.keypair.secret)],
            vec![(mc_receiver, utxo.amount)],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LatusParams;
    use crate::tx::apply_transaction;
    use zendoo_core::ids::SidechainId;
    use zendoo_primitives::digest::Digest32;

    fn params() -> LatusParams {
        LatusParams::new(SidechainId::from_label("wallet-test"), 16)
    }

    fn funded(wallet: &ScWallet, amounts: &[u64]) -> SidechainState {
        let mut state = SidechainState::new(16);
        for (i, a) in amounts.iter().enumerate() {
            state
                .mst_mut()
                .add(&Utxo {
                    address: wallet.address(),
                    amount: Amount::from_units(*a),
                    nonce: Digest32::hash_bytes(&[i as u8]),
                })
                .unwrap();
        }
        state
    }

    #[test]
    fn pay_with_change() {
        let alice = ScWallet::from_seed(b"alice");
        let mut state = funded(&alice, &[10, 20]);
        let tx = alice
            .pay(&state, Address::from_label("bob"), Amount::from_units(15))
            .unwrap();
        apply_transaction(&params(), &mut state, &tx).unwrap();
        assert_eq!(
            state.balance_of(&Address::from_label("bob")),
            Amount::from_units(15)
        );
        assert_eq!(alice.balance(&state), Amount::from_units(15));
    }

    #[test]
    fn pay_exact_no_change_output() {
        let alice = ScWallet::from_seed(b"alice");
        let mut state = funded(&alice, &[15]);
        let tx = alice
            .pay(&state, Address::from_label("bob"), Amount::from_units(15))
            .unwrap();
        if let ScTransaction::Payment(p) = &tx {
            assert_eq!(p.outputs.len(), 1, "no zero change output");
        } else {
            panic!("expected payment");
        }
        apply_transaction(&params(), &mut state, &tx).unwrap();
        assert_eq!(alice.balance(&state), Amount::ZERO);
    }

    #[test]
    fn insufficient_funds_reported() {
        let alice = ScWallet::from_seed(b"alice");
        let state = funded(&alice, &[10]);
        let err = alice
            .pay(&state, Address::from_label("bob"), Amount::from_units(11))
            .unwrap_err();
        assert_eq!(
            err,
            ScWalletError::InsufficientFunds {
                requested: Amount::from_units(11),
                available: Amount::from_units(10),
            }
        );
    }

    #[test]
    fn withdraw_appends_backward_transfers() {
        let alice = ScWallet::from_seed(b"alice");
        let mut state = funded(&alice, &[30]);
        let tx = alice
            .withdraw(
                &state,
                Address::from_label("alice-mc"),
                Amount::from_units(12),
            )
            .unwrap();
        apply_transaction(&params(), &mut state, &tx).unwrap();
        // 12 withdrawn + 18 change — both as backward transfers.
        assert_eq!(state.backward_transfers().len(), 2);
        assert_eq!(state.total_value(), Amount::ZERO);
    }

    #[test]
    fn withdraw_utxo_spends_exactly_one_coin() {
        let alice = ScWallet::from_seed(b"alice");
        let mut state = funded(&alice, &[5, 7]);
        let utxo = state.mst().owned_by(&alice.address())[0].1;
        let tx = alice.withdraw_utxo(&utxo, Address::from_label("mc"));
        apply_transaction(&params(), &mut state, &tx).unwrap();
        assert_eq!(state.backward_transfers().len(), 1);
        assert_eq!(
            alice.balance(&state),
            Amount::from_units(12).checked_sub(utxo.amount).unwrap()
        );
    }

    #[test]
    fn multi_coin_selection_prefers_large_coins() {
        let alice = ScWallet::from_seed(b"alice");
        let state = funded(&alice, &[1, 2, 3, 50]);
        let tx = alice
            .pay(&state, Address::from_label("bob"), Amount::from_units(40))
            .unwrap();
        if let ScTransaction::Payment(p) = &tx {
            assert_eq!(p.inputs.len(), 1, "the 50-coin covers it alone");
        } else {
            panic!("expected payment");
        }
    }
}
