//! The Latus system state (paper §5.2.1):
//! `state_t = (MST_t, backward_transfers_t)`.
//!
//! `backward_transfers` is the transient list of withdrawals collected in
//! the current withdrawal epoch; it resets when a certificate closes the
//! epoch. The state digest `s_t = H(state_t)` (§5.4) is a Poseidon hash
//! over four components:
//!
//! * the MST root,
//! * a running fold over appended backward transfers (so a transition
//!   witness needs only the pre-accumulator and the appended items),
//! * a running fold over touched MST positions (binding `mst_delta`,
//!   §5.5.3.1 / Appendix A, into the recursive proof),
//! * a running fold over synchronized MC block references (binding
//!   rule 5 of the WCert statement — "all MC blocks are referenced and
//!   all SC-related transactions processed" — into the proof).
//!
//! All three accumulators reset at each withdrawal-epoch boundary.

use zendoo_core::crosschain::InboundCrossTransfer;
use zendoo_core::ids::{Address, Amount};
use zendoo_core::transfer::BackwardTransfer;
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::field::Fp;
use zendoo_primitives::poseidon;

use crate::mst::{Mst, MstDelta, Utxo};

/// Folds one backward transfer into the running accumulator.
pub fn fold_backward_transfer(acc: Fp, bt: &BackwardTransfer) -> Fp {
    let receiver = Fp::from_be_bytes_reduced(bt.receiver.0.as_bytes());
    let amount = Fp::from_u64(bt.amount.units());
    poseidon::hash_many(&[acc, receiver, amount])
}

/// The accumulator of an empty backward-transfer list.
pub fn empty_bt_accumulator() -> Fp {
    poseidon::hash_many(&[Fp::from_u64(0x6274)]) // "bt"
}

/// Computes the accumulator of a whole list (for verification).
pub fn bt_list_accumulator(bts: &[BackwardTransfer]) -> Fp {
    bts.iter().fold(empty_bt_accumulator(), |acc, bt| {
        fold_backward_transfer(acc, bt)
    })
}

/// Folds one touched MST position into the delta accumulator.
pub fn fold_delta_position(acc: Fp, position: u64) -> Fp {
    poseidon::hash2(&acc, &Fp::from_u64(position))
}

/// The accumulator of an untouched epoch.
pub fn empty_delta_accumulator() -> Fp {
    poseidon::hash_many(&[Fp::from_u64(0x6d64)]) // "md"
}

/// Computes the delta accumulator of a touch sequence.
pub fn delta_sequence_accumulator(positions: &[u64]) -> Fp {
    positions.iter().fold(empty_delta_accumulator(), |acc, p| {
        fold_delta_position(acc, *p)
    })
}

/// The two halves of a mainchain-reference sync (§5.5.1): every MC block
/// reference must process its forward transfers and its BTRs, each
/// folding a tagged entry so omissions are provable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncKind {
    /// The forward-transfers half (`FTTx`).
    ForwardTransfers,
    /// The backward-transfer-requests half (`BTRTx`).
    BackwardTransferRequests,
}

/// Folds one sync event into the accumulator.
pub fn fold_sync(acc: Fp, kind: SyncKind, mc_block: &Digest32) -> Fp {
    let tag = match kind {
        SyncKind::ForwardTransfers => Fp::from_u64(0xf7),
        SyncKind::BackwardTransferRequests => Fp::from_u64(0xb7),
    };
    let block = Fp::from_be_bytes_reduced(mc_block.as_bytes());
    poseidon::hash_many(&[acc, tag, block])
}

/// The accumulator before any sync this epoch.
pub fn empty_sync_accumulator() -> Fp {
    poseidon::hash_many(&[Fp::from_u64(0x7363)]) // "sc"
}

/// The sync accumulator implied by fully processing `mc_blocks` in
/// order (FT half then BTR half per block).
pub fn full_sync_accumulator(mc_blocks: &[Digest32]) -> Fp {
    mc_blocks.iter().fold(empty_sync_accumulator(), |acc, b| {
        let acc = fold_sync(acc, SyncKind::ForwardTransfers, b);
        fold_sync(acc, SyncKind::BackwardTransferRequests, b)
    })
}

/// The state digest
/// `s = Poseidon(mst_root, bt_acc, delta_acc, sync_acc)` (§5.4).
pub fn state_digest(mst_root: Fp, bt_acc: Fp, delta_acc: Fp, sync_acc: Fp) -> Fp {
    poseidon::hash_many(&[mst_root, bt_acc, delta_acc, sync_acc])
}

/// The digest of a fresh (or epoch-reset) state over `mst_root`.
pub fn epoch_start_digest(mst_root: Fp) -> Fp {
    state_digest(
        mst_root,
        empty_bt_accumulator(),
        empty_delta_accumulator(),
        empty_sync_accumulator(),
    )
}

/// The full sidechain state.
///
/// # Examples
///
/// ```
/// use zendoo_latus::state::SidechainState;
/// use zendoo_latus::mst::Utxo;
/// use zendoo_core::ids::{Address, Amount};
/// use zendoo_primitives::digest::Digest32;
///
/// let mut state = SidechainState::new(10);
/// let utxo = Utxo {
///     address: Address::from_label("alice"),
///     amount: Amount::from_units(10),
///     nonce: Digest32::hash_bytes(b"n"),
/// };
/// state.mst_mut().add(&utxo).unwrap();
/// assert_eq!(state.mst().balance_of(&Address::from_label("alice")),
///            Amount::from_units(10));
/// ```
#[derive(Clone, Debug)]
pub struct SidechainState {
    mst: Mst,
    backward_transfers: Vec<BackwardTransfer>,
    bt_accumulator: Fp,
    /// MST positions touched since the last epoch reset (`mst_delta`).
    delta: MstDelta,
    delta_accumulator: Fp,
    /// Ordered touch sequence behind the delta accumulator (witness for
    /// the WCert circuit's rule 8).
    touch_sequence: Vec<u64>,
    sync_accumulator: Fp,
    /// Inbound cross-chain transfers credited on this sidechain
    /// (observability log; not part of the state digest — the credited
    /// UTXOs already are, through the MST root).
    inbound_cross: Vec<InboundCrossTransfer>,
}

impl SidechainState {
    /// An empty state over an MST of the given depth.
    pub fn new(mst_depth: u32) -> Self {
        SidechainState {
            mst: Mst::new(mst_depth),
            backward_transfers: Vec::new(),
            bt_accumulator: empty_bt_accumulator(),
            delta: MstDelta::new(mst_depth),
            delta_accumulator: empty_delta_accumulator(),
            touch_sequence: Vec::new(),
            sync_accumulator: empty_sync_accumulator(),
            inbound_cross: Vec::new(),
        }
    }

    /// Read access to the MST.
    pub fn mst(&self) -> &Mst {
        &self.mst
    }

    /// Direct MST mutation (bootstrap/test helper). Protocol transitions
    /// should go through [`crate::tx`] application so that deltas and
    /// accumulators stay consistent.
    pub fn mst_mut(&mut self) -> &mut Mst {
        &mut self.mst
    }

    /// The transient backward transfers of the current epoch.
    pub fn backward_transfers(&self) -> &[BackwardTransfer] {
        &self.backward_transfers
    }

    /// The running backward-transfer accumulator.
    pub fn bt_accumulator(&self) -> Fp {
        self.bt_accumulator
    }

    /// The epoch's touched-position delta.
    pub fn delta(&self) -> &MstDelta {
        &self.delta
    }

    /// The running delta accumulator.
    pub fn delta_accumulator(&self) -> Fp {
        self.delta_accumulator
    }

    /// The ordered touch sequence of the current epoch.
    pub fn touch_sequence(&self) -> &[u64] {
        &self.touch_sequence
    }

    /// The running mainchain-sync accumulator.
    pub fn sync_accumulator(&self) -> Fp {
        self.sync_accumulator
    }

    /// The state digest `s_t` (§5.4).
    pub fn digest(&self) -> Fp {
        state_digest(
            self.mst.root(),
            self.bt_accumulator,
            self.delta_accumulator,
            self.sync_accumulator,
        )
    }

    /// Records an MST insertion through the protocol path.
    pub(crate) fn insert_utxo(&mut self, utxo: &Utxo) -> Result<u64, crate::mst::MstError> {
        let position = self.mst.add(utxo)?;
        self.touch(position);
        Ok(position)
    }

    /// Records an MST removal through the protocol path.
    pub(crate) fn remove_utxo(&mut self, utxo: &Utxo) -> Result<u64, crate::mst::MstError> {
        let position = self.mst.remove(utxo)?;
        self.touch(position);
        Ok(position)
    }

    fn touch(&mut self, position: u64) {
        self.delta.touch(position);
        self.delta_accumulator = fold_delta_position(self.delta_accumulator, position);
        self.touch_sequence.push(position);
    }

    /// Appends a backward transfer (updating the accumulator).
    pub(crate) fn append_backward_transfer(&mut self, bt: BackwardTransfer) {
        self.bt_accumulator = fold_backward_transfer(self.bt_accumulator, &bt);
        self.backward_transfers.push(bt);
    }

    /// Folds a mainchain sync event.
    pub(crate) fn record_sync(&mut self, kind: SyncKind, mc_block: &Digest32) {
        self.sync_accumulator = fold_sync(self.sync_accumulator, kind, mc_block);
    }

    /// Logs an inbound cross-chain credit.
    pub(crate) fn record_inbound_cross(&mut self, inbound: InboundCrossTransfer) {
        self.inbound_cross.push(inbound);
    }

    /// Inbound cross-chain transfers credited so far (whole chain
    /// lifetime, not reset per epoch).
    pub fn inbound_cross_transfers(&self) -> &[InboundCrossTransfer] {
        &self.inbound_cross
    }

    /// Closes a withdrawal epoch: returns the certificate ingredients —
    /// `(bt_list, delta, touch_sequence)` — and resets the transients
    /// (§5.2.1: "backward_transfers is transient and reset every new
    /// withdrawal epoch").
    pub fn end_epoch(&mut self) -> (Vec<BackwardTransfer>, MstDelta, Vec<u64>) {
        let bts = std::mem::take(&mut self.backward_transfers);
        let delta = std::mem::replace(&mut self.delta, MstDelta::new(self.mst.depth()));
        let touches = std::mem::take(&mut self.touch_sequence);
        self.bt_accumulator = empty_bt_accumulator();
        self.delta_accumulator = empty_delta_accumulator();
        self.sync_accumulator = empty_sync_accumulator();
        (bts, delta, touches)
    }

    /// Total value on the sidechain.
    pub fn total_value(&self) -> Amount {
        self.mst.total_value()
    }

    /// Spendable balance of an address.
    pub fn balance_of(&self, address: &Address) -> Amount {
        self.mst.balance_of(address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_primitives::digest::Digest32;

    fn bt(addr: &str, amount: u64) -> BackwardTransfer {
        BackwardTransfer {
            receiver: Address::from_label(addr),
            amount: Amount::from_units(amount),
        }
    }

    fn utxo(n: u8) -> Utxo {
        Utxo {
            address: Address::from_label("a"),
            amount: Amount::from_units(1),
            nonce: Digest32::hash_bytes(&[n]),
        }
    }

    #[test]
    fn accumulator_matches_list_fold() {
        let mut state = SidechainState::new(8);
        let transfers = [bt("a", 1), bt("b", 2), bt("c", 3)];
        for t in &transfers {
            state.append_backward_transfer(*t);
        }
        assert_eq!(state.bt_accumulator(), bt_list_accumulator(&transfers));
        assert_eq!(state.backward_transfers().len(), 3);
    }

    #[test]
    fn delta_accumulator_matches_sequence_fold() {
        let mut state = SidechainState::new(8);
        state.insert_utxo(&utxo(1)).unwrap();
        state.insert_utxo(&utxo(2)).unwrap();
        state.remove_utxo(&utxo(1)).unwrap();
        assert_eq!(
            state.delta_accumulator(),
            delta_sequence_accumulator(state.touch_sequence())
        );
        assert_eq!(state.touch_sequence().len(), 3);
        // Delta (a set) has 2 distinct positions.
        assert_eq!(state.delta().count(), 2);
    }

    #[test]
    fn sync_accumulator_matches_full_fold() {
        let mut state = SidechainState::new(8);
        let blocks = [Digest32::hash_bytes(b"b1"), Digest32::hash_bytes(b"b2")];
        for b in &blocks {
            state.record_sync(SyncKind::ForwardTransfers, b);
            state.record_sync(SyncKind::BackwardTransferRequests, b);
        }
        assert_eq!(state.sync_accumulator(), full_sync_accumulator(&blocks));
    }

    #[test]
    fn digest_changes_with_every_component() {
        let mut state = SidechainState::new(8);
        let d0 = state.digest();
        state.insert_utxo(&utxo(1)).unwrap();
        let d1 = state.digest();
        assert_ne!(d0, d1);
        state.append_backward_transfer(bt("x", 5));
        let d2 = state.digest();
        assert_ne!(d1, d2);
        state.record_sync(SyncKind::ForwardTransfers, &Digest32::hash_bytes(b"b"));
        assert_ne!(state.digest(), d2);
    }

    #[test]
    fn end_epoch_resets_transients_but_not_mst() {
        let mut state = SidechainState::new(8);
        state.insert_utxo(&utxo(1)).unwrap();
        state.append_backward_transfer(bt("x", 5));
        state.record_sync(SyncKind::ForwardTransfers, &Digest32::hash_bytes(b"b"));
        let mst_root = state.mst().root();
        let (bts, delta, touches) = state.end_epoch();
        assert_eq!(bts.len(), 1);
        assert_eq!(delta.count(), 1);
        assert_eq!(touches.len(), 1);
        assert!(state.backward_transfers().is_empty());
        assert_eq!(state.delta().count(), 0);
        assert_eq!(state.bt_accumulator(), empty_bt_accumulator());
        assert_eq!(state.delta_accumulator(), empty_delta_accumulator());
        assert_eq!(state.sync_accumulator(), empty_sync_accumulator());
        assert_eq!(state.mst().root(), mst_root, "MST persists across epochs");
        // Post-reset digest equals the canonical epoch-start digest.
        assert_eq!(state.digest(), epoch_start_digest(mst_root));
    }

    #[test]
    fn bt_order_matters_for_accumulator() {
        assert_ne!(
            bt_list_accumulator(&[bt("a", 1), bt("b", 2)]),
            bt_list_accumulator(&[bt("b", 2), bt("a", 1)])
        );
    }
}
