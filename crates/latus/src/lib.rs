//! # zendoo-latus
//!
//! The **Latus** sidechain construction (paper §5): a decentralized,
//! verifiable, proof-of-stake sidechain built on the Zendoo CCTP whose
//! withdrawal certificates carry recursive SNARK proofs of the entire
//! epoch's state progression:
//!
//! * [`mst`] — the Merkle State Tree (UTXO accounting, §5.2, Fig 9) and
//!   `mst_delta` (Appendix A);
//! * [`state`] — the system state and its digest/accumulators (§5.2.1);
//! * [`tx`] — the four transaction types with `update` semantics and
//!   circuit witnesses (§5.3);
//! * [`proof`] — the state-transition relation + recursive epoch proofs
//!   (§5.4, Figs 10–11);
//! * [`block`] — SC blocks and mainchain block references (§5.5.1);
//! * [`consensus`] — Ouroboros-style slot leadership with stake-
//!   proportional VRF lotteries (§5.1);
//! * [`cert`] — the certificate / BTR / CSW circuits (§5.5.3);
//! * [`node`] — the full node: forging, syncing, certificate production
//!   and user proof services;
//! * [`certifier`] — the certifier-committee baseline of the authors'
//!   earlier design, both native and as a CCTP circuit;
//! * [`params`] — deployment parameters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod cert;
pub mod certifier;
pub mod consensus;
pub mod mst;
pub mod node;
pub mod params;
pub mod proof;
pub mod prover_pool;
pub mod state;
pub mod tx;
pub mod wallet;

pub use block::{McBlockReference, ScBlock, ScBlockHeader};
pub use mst::{Mst, MstDelta, Utxo};
pub use node::{LatusKeys, LatusNode};
pub use params::LatusParams;
pub use proof::{EpochProofBuilder, LatusProofSystem, LatusTransitionVerifier};
pub use prover_pool::{ProverPool, RewardLedger};
pub use state::SidechainState;
pub use tx::{PaymentTx, ScTransaction};
pub use wallet::ScWallet;
