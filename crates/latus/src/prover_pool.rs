//! The proof-dispatching scheme of §5.4.1.
//!
//! "One of the possible solutions is to introduce a special dispatching
//! scheme that assigns generation of proofs randomly to interested
//! parties who then do these tasks in parallel and submit generated
//! proofs to the blockchain. An incentive scheme provides a reward for
//! each valid submission."
//!
//! [`ProverPool`] implements exactly that, on top of the parallel fold
//! of [`zendoo_snark::parallel`]: registered provers are assigned work
//! pseudo-randomly (seeded by the epoch, so the assignment is publicly
//! re-derivable), each completed proof credits its prover, and
//! [`RewardLedger`] accumulates the per-epoch payouts that a production
//! deployment would settle on-chain.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zendoo_core::ids::{Address, Amount};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::field::Fp;
use zendoo_primitives::sha256::Prg;
use zendoo_snark::backend::ProveError;
use zendoo_snark::parallel::ParallelProver;
use zendoo_snark::recursive::StateProof;

use crate::proof::LatusProofSystem;
use crate::tx::TransitionWitness;

/// A registered prover identity.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProverIdentity {
    /// Where rewards are paid.
    pub reward_address: Address,
    /// Display label.
    pub label: String,
}

/// Accumulated rewards per prover address.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewardLedger {
    rewards: BTreeMap<Address, Amount>,
}

impl RewardLedger {
    /// Credits `amount` to `address`.
    pub fn credit(&mut self, address: Address, amount: Amount) {
        let entry = self.rewards.entry(address).or_insert(Amount::ZERO);
        *entry = entry.checked_add(amount).expect("rewards fit in u64");
    }

    /// The accumulated reward of one address.
    pub fn reward_of(&self, address: &Address) -> Amount {
        self.rewards.get(address).copied().unwrap_or(Amount::ZERO)
    }

    /// Total rewards outstanding.
    pub fn total(&self) -> Amount {
        Amount::checked_sum(self.rewards.values().copied()).expect("rewards fit in u64")
    }

    /// Iterates `(address, reward)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Amount)> {
        self.rewards.iter()
    }
}

/// The dispatch plan for one epoch: which prover works which lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchPlan {
    /// Prover index per worker lane.
    pub lane_assignment: Vec<usize>,
}

/// A pool of provers sharing the epoch proving load (§5.4.1).
pub struct ProverPool {
    provers: Vec<ProverIdentity>,
    /// Reward per completed proof (base or merge).
    pub reward_per_proof: Amount,
    ledger: RewardLedger,
}

impl ProverPool {
    /// Creates a pool over the given prover identities.
    ///
    /// # Panics
    ///
    /// Panics if `provers` is empty.
    pub fn new(provers: Vec<ProverIdentity>, reward_per_proof: Amount) -> Self {
        assert!(!provers.is_empty(), "a pool needs at least one prover");
        ProverPool {
            provers,
            reward_per_proof,
            ledger: RewardLedger::default(),
        }
    }

    /// The registered provers.
    pub fn provers(&self) -> &[ProverIdentity] {
        &self.provers
    }

    /// The reward ledger.
    pub fn ledger(&self) -> &RewardLedger {
        &self.ledger
    }

    /// Derives the publicly re-derivable dispatch plan for an epoch:
    /// worker lanes are assigned to provers by a PRG seeded with the
    /// epoch anchor ("assigns generation of proofs randomly to
    /// interested parties").
    pub fn dispatch(&self, epoch_seed: &Digest32, lanes: usize) -> DispatchPlan {
        let mut prg = Prg::new(&format!("zendoo/prover-dispatch/{}", epoch_seed.to_hex()));
        let lane_assignment = (0..lanes)
            .map(|_| (prg.next_u64() % self.provers.len() as u64) as usize)
            .collect();
        DispatchPlan { lane_assignment }
    }

    /// Proves a whole epoch with the pool: lanes run in parallel, each
    /// completed proof credits the prover assigned to its lane.
    ///
    /// # Errors
    ///
    /// Propagates proving failures.
    pub fn prove_epoch(
        &mut self,
        system: &LatusProofSystem,
        epoch_seed: &Digest32,
        states: &[Fp],
        witnesses: &[TransitionWitness],
    ) -> Result<StateProof, ProveError> {
        let lanes = self.provers.len().min(witnesses.len().max(1)).max(1);
        let plan = self.dispatch(epoch_seed, lanes);
        let prover = ParallelProver::new(system, lanes);
        let (proof, report) = prover.prove_chain(states, witnesses)?;
        for (lane, prover_index) in plan.lane_assignment.iter().enumerate() {
            let proofs = report.total_for(lane);
            if proofs > 0 {
                let reward = Amount::from_units(
                    proofs
                        .checked_mul(self.reward_per_proof.units())
                        .expect("reward fits in u64"),
                );
                self.ledger
                    .credit(self.provers[*prover_index].reward_address, reward);
            }
        }
        Ok(proof)
    }
}

impl std::fmt::Debug for ProverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProverPool")
            .field("provers", &self.provers.len())
            .field("reward_per_proof", &self.reward_per_proof)
            .field("total_rewards", &self.ledger.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LatusParams;
    use crate::proof::proof_system;
    use crate::state::SidechainState;
    use crate::tx::{apply_transaction, PaymentTx, ScTransaction};
    use zendoo_core::ids::SidechainId;
    use zendoo_primitives::schnorr::Keypair;

    fn pool(n: usize) -> ProverPool {
        let provers = (0..n)
            .map(|i| ProverIdentity {
                reward_address: Address::from_label(&format!("prover-{i}")),
                label: format!("prover-{i}"),
            })
            .collect();
        ProverPool::new(provers, Amount::from_units(10))
    }

    fn epoch_material() -> (LatusProofSystem, Vec<Fp>, Vec<TransitionWitness>) {
        let params = LatusParams::new(SidechainId::from_label("pool-test"), 16);
        let system = proof_system(params, b"pool");
        let alice = Keypair::from_seed(b"alice");
        let mut state = SidechainState::new(16);
        let mut utxos = Vec::new();
        for i in 0..6u8 {
            let u = crate::mst::Utxo {
                address: Address::from_public_key(&alice.public),
                amount: Amount::from_units(10),
                nonce: Digest32::hash_bytes(&[i]),
            };
            state.mst_mut().add(&u).unwrap();
            utxos.push(u);
        }
        let mut states = vec![state.digest()];
        let mut witnesses = Vec::new();
        for u in &utxos {
            let tx = ScTransaction::Payment(PaymentTx::create(
                vec![(*u, &alice.secret)],
                vec![(Address::from_label("bob"), Amount::from_units(10))],
            ));
            let w = apply_transaction(&params, &mut state, &tx).unwrap();
            witnesses.push(w);
            states.push(state.digest());
        }
        (system, states, witnesses)
    }

    #[test]
    fn dispatch_is_deterministic_per_seed() {
        let pool = pool(4);
        let seed = Digest32::hash_bytes(b"epoch-7");
        assert_eq!(pool.dispatch(&seed, 8), pool.dispatch(&seed, 8));
        assert_ne!(
            pool.dispatch(&seed, 8),
            pool.dispatch(&Digest32::hash_bytes(b"epoch-8"), 8)
        );
    }

    #[test]
    fn pooled_epoch_proof_verifies_and_pays() {
        let (system, states, witnesses) = epoch_material();
        let mut pool = pool(3);
        let seed = Digest32::hash_bytes(b"epoch-0");
        let proof = pool
            .prove_epoch(&system, &seed, &states, &witnesses)
            .unwrap();
        assert!(system.verify(&proof));
        // 6 base + 5 merge proofs at 10 units each.
        assert_eq!(pool.ledger().total(), Amount::from_units(110));
        // All rewards accounted to registered provers.
        let accounted: u64 = pool.ledger().iter().map(|(_, amount)| amount.units()).sum();
        assert_eq!(accounted, 110);
    }

    #[test]
    fn single_prover_pool_collects_everything() {
        let (system, states, witnesses) = epoch_material();
        let mut pool = pool(1);
        let seed = Digest32::hash_bytes(b"epoch-0");
        pool.prove_epoch(&system, &seed, &states, &witnesses)
            .unwrap();
        assert_eq!(
            pool.ledger().reward_of(&Address::from_label("prover-0")),
            Amount::from_units(110)
        );
    }

    #[test]
    #[should_panic(expected = "at least one prover")]
    fn empty_pool_panics() {
        let _ = ProverPool::new(vec![], Amount::from_units(1));
    }
}
