#![allow(dead_code)]

//! Shared two-chain test harness: one mainchain, one Latus node.

use std::sync::Arc;
use zendoo_core::epoch::EpochSchedule;
use zendoo_core::ids::{Address, Amount, SidechainId};
use zendoo_latus::consensus::ConsensusParams;
use zendoo_latus::node::{LatusKeys, LatusNode};
use zendoo_latus::params::LatusParams;
use zendoo_latus::tx::ReceiverMetadata;
use zendoo_mainchain::chain::{Blockchain, ChainParams};
use zendoo_mainchain::transaction::{McTransaction, TxOut};
use zendoo_mainchain::wallet::Wallet;
use zendoo_primitives::schnorr::Keypair;

pub const EPOCH_LEN: u32 = 6;
pub const SUBMIT_LEN: u32 = 2;
pub const START_BLOCK: u64 = 2;
pub const MST_DEPTH: u32 = 16;

/// A two-chain test harness.
pub struct TwoChains {
    pub chain: Blockchain,
    pub node: LatusNode,
    pub keys: Arc<LatusKeys>,
    pub mc_wallet: Wallet,
    pub sc_user: Keypair,
    pub sid: SidechainId,
    pub schedule: EpochSchedule,
    pub time: u64,
}

impl TwoChains {
    pub fn new(label: &str) -> Self {
        let mc_wallet = Wallet::from_seed(b"mc-user");
        let sc_user = Keypair::from_seed(b"sc-user");
        let sid = SidechainId::from_label(label);
        let params = LatusParams::new(sid, MST_DEPTH);
        let schedule = EpochSchedule::new(START_BLOCK, EPOCH_LEN, SUBMIT_LEN).unwrap();
        let keys = Arc::new(LatusKeys::generate(params, schedule, b"harness-seed"));

        let mut chain_params = ChainParams::default();
        chain_params.genesis_outputs = vec![TxOut::regular(
            mc_wallet.address(),
            Amount::from_units(1_000_000),
        )];
        let mut chain = Blockchain::new(chain_params);
        let config = keys.sidechain_config(&params, schedule);
        chain
            .mine_next_block(
                mc_wallet.address(),
                vec![McTransaction::SidechainDeclaration(Box::new(config))],
                1,
            )
            .unwrap();
        let anchor = chain.tip_hash();
        let forger = Keypair::from_seed(b"forger");
        let node = LatusNode::new(
            params,
            schedule,
            ConsensusParams::with_bootstrap(forger.public),
            Arc::clone(&keys),
            forger,
            anchor,
        );
        TwoChains {
            chain,
            node,
            keys,
            mc_wallet,
            sc_user,
            sid,
            schedule,
            time: 1,
        }
    }

    /// Mines one MC block with `txs` and syncs the node to it.
    pub fn step(&mut self, txs: Vec<McTransaction>) -> zendoo_mainchain::Block {
        self.time += 1;
        let block = self
            .chain
            .mine_next_block(self.mc_wallet.address(), txs, self.time)
            .unwrap();
        self.node.sync_mainchain_block(&block).unwrap();
        block
    }

    /// Runs MC blocks until the node's epoch is complete, produces and
    /// submits the certificate.
    pub fn run_epoch(
        &mut self,
        mut mc_txs: Vec<McTransaction>,
    ) -> zendoo_core::WithdrawalCertificate {
        while !self.node.epoch_complete() {
            let txs = std::mem::take(&mut mc_txs);
            self.step(txs);
        }
        let cert = self.node.produce_certificate().unwrap();
        self.step(vec![McTransaction::Certificate(Box::new(cert.clone()))]);
        cert
    }

    /// Funds the SC user with a forward transfer and certifies epoch 0.
    pub fn bootstrap_funded(&mut self, amount: u64) -> zendoo_core::WithdrawalCertificate {
        let meta = ReceiverMetadata {
            receiver: self.sc_address(),
            payback: self.mc_wallet.address(),
        };
        let ft = self
            .mc_wallet
            .forward_transfer(
                &self.chain,
                self.sid,
                meta.to_bytes(),
                Amount::from_units(amount),
                Amount::ZERO,
            )
            .unwrap();
        self.run_epoch(vec![ft])
    }

    pub fn sc_address(&self) -> Address {
        Address::from_public_key(&self.sc_user.public)
    }

    pub fn sc_balance(&self) -> Amount {
        self.chain.state().registry.get(&self.sid).unwrap().balance
    }

    /// Mines empty MC blocks (without node sync) until `height`.
    pub fn mine_unsynced_to(&mut self, height: u64) {
        while self.chain.height() < height {
            self.time += 1;
            self.chain
                .mine_next_block(self.mc_wallet.address(), vec![], self.time)
                .unwrap();
        }
    }

    /// Submits a single MC transaction in a fresh block, returning the
    /// result (does not sync the node — for rejection tests).
    pub fn try_submit(
        &mut self,
        tx: McTransaction,
    ) -> Result<zendoo_mainchain::Block, zendoo_mainchain::BlockError> {
        self.time += 1;
        self.chain
            .mine_next_block(self.mc_wallet.address(), vec![tx], self.time)
    }
}
