//! Wallet-driven flows through the full node: coin selection, payments
//! and withdrawals built by [`zendoo_latus::wallet::ScWallet`] survive
//! whole epochs with proofs.

mod common;

use common::TwoChains;
use zendoo_core::ids::{Address, Amount};
use zendoo_latus::wallet::ScWallet;
use zendoo_mainchain::transaction::McTransaction;

#[test]
fn wallet_payment_and_withdrawal_through_epochs() {
    let mut h = TwoChains::new("wallet-flow");
    h.bootstrap_funded(10_000);

    // The harness's sc_user key corresponds to this wallet seed.
    let alice = ScWallet::from_seed(b"sc-user");
    assert_eq!(alice.address(), h.sc_address());
    assert_eq!(alice.balance(h.node.state()), Amount::from_units(10_000));

    // Wallet-built payment.
    let bob = ScWallet::from_seed(b"sc-bob");
    let pay = alice
        .pay(h.node.state(), bob.address(), Amount::from_units(3_000))
        .unwrap();
    h.node.submit_transaction(pay).unwrap();
    h.step(vec![]);
    assert_eq!(bob.balance(h.node.state()), Amount::from_units(3_000));
    assert_eq!(alice.balance(h.node.state()), Amount::from_units(7_000));

    // Wallet-built withdrawal by bob to a mainchain address.
    let bob_mc = Address::from_label("bob-mc");
    let withdraw = bob
        .withdraw(h.node.state(), bob_mc, Amount::from_units(1_000))
        .unwrap();
    h.node.submit_transaction(withdraw).unwrap();

    // Finish the epoch; the certificate carries bob's withdrawals
    // (1 000 + 2 000 change, both to bob_mc per the wallet's policy).
    let cert = h.run_epoch(vec![]);
    let total: u64 = cert.bt_list.iter().map(|bt| bt.amount.units()).sum();
    assert_eq!(total, 3_000);
    assert!(cert.bt_list.iter().all(|bt| bt.receiver == bob_mc));

    // Mature and check the MC payout.
    while h.chain.state().utxos.balance_of(&bob_mc).is_zero() {
        h.step(vec![]);
    }
    assert_eq!(
        h.chain.state().utxos.balance_of(&bob_mc),
        Amount::from_units(3_000)
    );
    assert_eq!(bob.balance(h.node.state()), Amount::ZERO);
}

#[test]
fn wallet_multi_coin_payment() {
    let mut h = TwoChains::new("wallet-multicoin");
    // Three separate FTs → three UTXOs for alice.
    for amount in [500u64, 700, 900] {
        let meta = zendoo_latus::tx::ReceiverMetadata {
            receiver: h.sc_address(),
            payback: h.mc_wallet.address(),
        };
        let ft = h
            .mc_wallet
            .forward_transfer(
                &h.chain,
                h.sid,
                meta.to_bytes(),
                Amount::from_units(amount),
                Amount::ZERO,
            )
            .unwrap();
        h.step(vec![ft]);
    }
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    let cert = h.node.produce_certificate().unwrap();
    h.step(vec![McTransaction::Certificate(Box::new(cert))]);

    let alice = ScWallet::from_seed(b"sc-user");
    assert_eq!(
        h.node.utxos_of(&alice.address()).len(),
        3,
        "three separate coins"
    );
    // A payment needing two coins.
    let pay = alice
        .pay(
            h.node.state(),
            Address::from_label("merchant"),
            Amount::from_units(1_500),
        )
        .unwrap();
    h.node.submit_transaction(pay).unwrap();
    h.step(vec![]);
    assert_eq!(
        h.node.balance_of(&Address::from_label("merchant")),
        Amount::from_units(1_500)
    );
    assert_eq!(alice.balance(h.node.state()), Amount::from_units(600));
}
