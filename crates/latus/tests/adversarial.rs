//! Adversarial tests: every forgery path the protocol must close.
//!
//! Each test produces *valid* material through the honest pipeline, then
//! tampers exactly one thing and asserts the mainchain (or the prover
//! itself) rejects it — covering the WCert statement rules (§5.5.3.1),
//! the BTR/CSW statements (§5.5.3.2–3), quality racing, window
//! discipline and nullifier replay.

mod common;

use common::TwoChains;
use std::collections::BTreeMap;
use zendoo_core::ids::{Address, Amount, Nullifier};
use zendoo_core::proofdata::{ProofData, ProofDataElem};
use zendoo_core::transfer::BackwardTransfer;
use zendoo_mainchain::transaction::McTransaction;
use zendoo_mainchain::BlockError;
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::field::Fp;

#[test]
fn tampered_quality_rejected() {
    let mut h = TwoChains::new("adv-quality");
    let mut cert = h.bootstrap_funded(1_000);
    // Pump the quality after proving: the proof binds quality via the
    // public input, so verification fails.
    cert.quality += 10;
    cert.epoch_id = 1; // aim at the open window
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    let real = h.node.produce_certificate().unwrap();
    assert!(h
        .try_submit(McTransaction::Certificate(Box::new(cert)))
        .is_err());
    // The honest certificate still goes through.
    h.try_submit(McTransaction::Certificate(Box::new(real)))
        .unwrap();
}

#[test]
fn injected_backward_transfer_rejected() {
    let mut h = TwoChains::new("adv-bt");
    h.bootstrap_funded(1_000);
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    let mut cert = h.node.produce_certificate().unwrap();
    // Splice a thief payout into the certified BT list.
    cert.bt_list.push(BackwardTransfer {
        receiver: Address::from_label("thief"),
        amount: Amount::from_units(500),
    });
    let err = h
        .try_submit(McTransaction::Certificate(Box::new(cert)))
        .unwrap_err();
    assert!(matches!(err, BlockError::Registry(_)), "{err}");
}

#[test]
fn swapped_proofdata_rejected() {
    let mut h = TwoChains::new("adv-proofdata");
    h.bootstrap_funded(1_000);
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    let mut cert = h.node.produce_certificate().unwrap();
    // Claim a different final MST root (element 1 of Latus proofdata).
    cert.proofdata = ProofData(vec![
        cert.proofdata.0[0].clone(),
        ProofDataElem::Field(Fp::from_u64(0xbad)),
        cert.proofdata.0[2].clone(),
    ]);
    assert!(h
        .try_submit(McTransaction::Certificate(Box::new(cert)))
        .is_err());
}

#[test]
fn replayed_certificate_for_wrong_epoch_rejected() {
    let mut h = TwoChains::new("adv-epoch-replay");
    let cert0 = h.bootstrap_funded(1_000);
    // Run epoch 1 honestly.
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    let _cert1 = h.node.produce_certificate().unwrap();
    // Replaying the epoch-0 certificate in epoch 1's window: the window
    // check pins certificates to their epoch.
    let mut replay = cert0;
    assert!(h
        .try_submit(McTransaction::Certificate(Box::new(replay.clone())))
        .is_err());
    // Even with the epoch id rewritten, the proof no longer verifies.
    replay.epoch_id = 1;
    assert!(h
        .try_submit(McTransaction::Certificate(Box::new(replay)))
        .is_err());
}

#[test]
fn prover_refuses_false_statements() {
    // The malicious-prover view: with the proving key in hand, the
    // simulated backend still refuses statements whose witness does not
    // satisfy the circuit (knowledge soundness in the model).
    let mut h = TwoChains::new("adv-prover");
    h.bootstrap_funded(1_000);
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    // Taking the honest public inputs but a botched witness: directly
    // attempt a base proof with an inconsistent endpoint.
    let sys = &h.keys.system;
    let state = h.node.state();
    let bogus = sys.prove_base(state.digest(), Fp::from_u64(42), &dummy_witness(&h));
    assert!(bogus.is_err(), "no proof for a false transition");
}

fn dummy_witness(h: &TwoChains) -> zendoo_latus::tx::TransitionWitness {
    // A structurally plausible witness that cannot satisfy any real
    // transition (empty updates, mismatched accumulators).
    zendoo_latus::tx::TransitionWitness {
        tx: zendoo_latus::tx::ScTransaction::Payment(zendoo_latus::tx::PaymentTx {
            inputs: vec![],
            outputs: vec![],
        }),
        pre_mst_root: h.node.state().mst().root(),
        pre_bt_accumulator: Fp::from_u64(1),
        pre_delta_accumulator: Fp::from_u64(2),
        pre_sync_accumulator: Fp::from_u64(3),
        updates: vec![],
        ft_steps: vec![],
        btr_steps: vec![],
        appended_bts: vec![],
    }
}

#[test]
fn btr_tampered_fields_rejected() {
    let mut h = TwoChains::new("adv-btr");
    h.bootstrap_funded(800);
    let utxo = h.node.utxos_of(&h.sc_address())[0];
    let receiver = Address::from_label("legit");
    let btr = h
        .node
        .create_btr(0, &utxo, &h.sc_user.secret, receiver)
        .unwrap();

    // Raise the amount.
    let mut greedy = btr.clone();
    greedy.amount = Amount::from_units(9_999);
    assert!(h.try_submit(McTransaction::Btr(Box::new(greedy))).is_err());

    // Redirect the receiver.
    let mut redirect = btr.clone();
    redirect.receiver = Address::from_label("mallory");
    assert!(h
        .try_submit(McTransaction::Btr(Box::new(redirect)))
        .is_err());

    // Swap the nullifier (double-spend setup).
    let mut renull = btr.clone();
    renull.nullifier = Nullifier::from_utxo_digest(&Digest32::hash_bytes(b"other"));
    assert!(h.try_submit(McTransaction::Btr(Box::new(renull))).is_err());

    // The untampered request is accepted.
    h.try_submit(McTransaction::Btr(Box::new(btr))).unwrap();
}

#[test]
fn btr_by_non_owner_cannot_be_proven() {
    let mut h = TwoChains::new("adv-btr-owner");
    h.bootstrap_funded(800);
    let utxo = h.node.utxos_of(&h.sc_address())[0];
    let mallory = zendoo_primitives::schnorr::Keypair::from_seed(b"mallory");
    // Mallory asks the node to prove a withdrawal of alice's utxo with
    // her own key: the ownership constraint fails at proving time.
    let result = h
        .node
        .create_btr(0, &utxo, &mallory.secret, Address::from_label("mallory"));
    assert!(result.is_err(), "no proof without the owner's key");
}

#[test]
fn historical_csw_on_spent_slot_cannot_be_proven() {
    // Appendix A's soundness direction: once the slot is touched, the
    // delta bit flips and the historical chain no longer proves
    // ownership.
    let mut h = TwoChains::new("adv-csw-spent");
    h.bootstrap_funded(600);
    let utxo = h.node.utxos_of(&h.sc_address())[0];

    // Epoch 1: alice spends her utxo (touching its slot).
    let pay = zendoo_latus::tx::ScTransaction::Payment(zendoo_latus::tx::PaymentTx::create(
        vec![(utxo, &h.sc_user.secret)],
        vec![(Address::from_label("someone-else"), Amount::from_units(600))],
    ));
    h.node.submit_transaction(pay).unwrap();
    let _cert1 = h.run_epoch(vec![]);

    // Cease the sidechain.
    let ceasing = h.schedule.ceasing_height(2);
    h.mine_unsynced_to(ceasing);

    // Historical CSW anchored at epoch 0 across epoch 1 must fail: the
    // epoch-1 delta has the slot's bit set.
    let mut deltas = BTreeMap::new();
    deltas.insert(1u32, h.node.epoch_delta(1).unwrap().clone());
    let result = h.node.create_historical_csw(
        0,
        1,
        &utxo,
        &h.sc_user.secret,
        Address::from_label("rescue"),
        &deltas,
    );
    assert!(result.is_err(), "slot was touched — claim must not prove");
}

#[test]
fn csw_direct_with_forged_membership_rejected() {
    let mut h = TwoChains::new("adv-csw-forged");
    h.bootstrap_funded(600);
    // Cease without epoch-1 certificate.
    let ceasing = h.schedule.ceasing_height(1);
    h.mine_unsynced_to(ceasing);

    // A utxo that never existed on the sidechain.
    let phantom = zendoo_latus::mst::Utxo {
        address: h.sc_address(),
        amount: Amount::from_units(600),
        nonce: Digest32::hash_bytes(b"phantom"),
    };
    let result = h
        .node
        .create_csw(0, &phantom, &h.sc_user.secret, Address::from_label("x"));
    assert!(result.is_err(), "no membership, no proof");
}

#[test]
fn mainchain_rejects_cert_outside_window_even_with_valid_proof() {
    let mut h = TwoChains::new("adv-window");
    h.bootstrap_funded(1_000);
    while !h.node.epoch_complete() {
        h.step(vec![]);
    }
    let cert = h.node.produce_certificate().unwrap();
    // Let the window for epoch 1 close before submitting.
    let ceasing = h.schedule.ceasing_height(1);
    h.mine_unsynced_to(ceasing);
    let err = h
        .try_submit(McTransaction::Certificate(Box::new(cert)))
        .unwrap_err();
    assert!(matches!(err, BlockError::Registry(_)), "{err}");
}
