//! End-to-end lifecycle tests across both chains (experiments E8, E9,
//! E11, E12): forward transfers, sidechain payments, backward transfers,
//! certificate production with *real* recursive proofs accepted by the
//! *real* mainchain verifier, multi-epoch operation, BTR round-trips,
//! ceasing + CSW, and the Appendix-A historical-ownership escape hatch.

use std::collections::BTreeMap;
use std::sync::Arc;
use zendoo_core::epoch::EpochSchedule;
use zendoo_core::ids::{Address, Amount, SidechainId};
use zendoo_latus::consensus::ConsensusParams;
use zendoo_latus::node::{LatusKeys, LatusNode};
use zendoo_latus::params::LatusParams;
use zendoo_latus::tx::{PaymentTx, ReceiverMetadata, ScTransaction};
use zendoo_mainchain::chain::{Blockchain, ChainParams};
use zendoo_mainchain::registry::SidechainStatus;
use zendoo_mainchain::transaction::{McTransaction, TxOut};
use zendoo_mainchain::wallet::Wallet;
use zendoo_primitives::schnorr::Keypair;

const EPOCH_LEN: u32 = 6;
const SUBMIT_LEN: u32 = 2;
const START_BLOCK: u64 = 2;
const MST_DEPTH: u32 = 16;

/// A two-chain test harness: one mainchain, one Latus node.
struct TwoChains {
    chain: Blockchain,
    node: LatusNode,
    mc_wallet: Wallet,
    sc_user: Keypair,
    sid: SidechainId,
    time: u64,
    /// MC height whose block the node processed last.
    synced_height: u64,
}

impl TwoChains {
    fn new() -> Self {
        let mc_wallet = Wallet::from_seed(b"mc-user");
        let sc_user = Keypair::from_seed(b"sc-user");
        let sid = SidechainId::from_label("latus-e2e");
        let params = LatusParams::new(sid, MST_DEPTH);
        let schedule = EpochSchedule::new(START_BLOCK, EPOCH_LEN, SUBMIT_LEN).unwrap();
        let keys = Arc::new(LatusKeys::generate(params, schedule, b"e2e-seed"));

        let mut chain_params = ChainParams::default();
        chain_params.genesis_outputs = vec![TxOut::regular(
            mc_wallet.address(),
            Amount::from_units(1_000_000),
        )];
        let mut chain = Blockchain::new(chain_params);

        // Declare the sidechain at height 1 (activation at height 2).
        let config = keys.sidechain_config(&params, schedule);
        chain
            .mine_next_block(
                mc_wallet.address(),
                vec![McTransaction::SidechainDeclaration(Box::new(config))],
                1,
            )
            .unwrap();

        // The node anchors its reference chain at the block before
        // start_block — height 1, the current tip.
        let anchor = chain.tip_hash();
        let forger = Keypair::from_seed(b"forger");
        let node = LatusNode::new(
            params,
            schedule,
            ConsensusParams::with_bootstrap(forger.public),
            keys,
            forger,
            anchor,
        );
        TwoChains {
            chain,
            node,
            mc_wallet,
            sc_user,
            sid,
            time: 1,
            synced_height: 1,
        }
    }

    /// Mines one MC block with `txs` and syncs the node to it.
    fn step(&mut self, txs: Vec<McTransaction>) {
        self.time += 1;
        let block = self
            .chain
            .mine_next_block(self.mc_wallet.address(), txs, self.time)
            .unwrap();
        self.synced_height += 1;
        assert_eq!(block.header.height, self.synced_height);
        self.node.sync_mainchain_block(&block).unwrap();
    }

    /// Runs MC blocks (and node sync) until the node's withdrawal epoch
    /// is complete, then produces + submits the certificate.
    fn run_epoch(&mut self, mut mc_txs: Vec<McTransaction>) -> zendoo_core::WithdrawalCertificate {
        while !self.node.epoch_complete() {
            let txs = std::mem::take(&mut mc_txs);
            self.step(txs);
        }
        let cert = self.node.produce_certificate().unwrap();
        // Submit in the next MC block (inside the submission window).
        self.step(vec![McTransaction::Certificate(Box::new(cert.clone()))]);
        cert
    }

    fn sc_address(&self) -> Address {
        Address::from_public_key(&self.sc_user.public)
    }

    fn sc_balance(&self) -> Amount {
        self.chain.state().registry.get(&self.sid).unwrap().balance
    }
}

#[test]
fn full_transfer_lifecycle_with_real_proofs() {
    let mut h = TwoChains::new();

    // --- Epoch 0: forward 500 coins to the sidechain.
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(500),
            Amount::ZERO,
        )
        .unwrap();
    let cert0 = h.run_epoch(vec![ft]);
    assert_eq!(cert0.epoch_id, 0);
    assert!(cert0.bt_list.is_empty());
    // The MC accepted the certificate (it is in the registry).
    let entry = h.chain.state().registry.get(&h.sid).unwrap();
    assert_eq!(entry.certificates.len(), 1);
    assert_eq!(h.sc_balance(), Amount::from_units(500));
    // The coins exist on the sidechain.
    assert_eq!(h.node.balance_of(&h.sc_address()), Amount::from_units(500));

    // --- Epoch 1: pay within the SC, then withdraw 200 back.
    let utxo = h.node.utxos_of(&h.sc_address())[0];
    let bob = Keypair::from_seed(b"bob");
    let bob_addr = Address::from_public_key(&bob.public);
    let pay = ScTransaction::Payment(PaymentTx::create(
        vec![(utxo, &h.sc_user.secret)],
        vec![
            (bob_addr, Amount::from_units(200)),
            (h.sc_address(), Amount::from_units(300)),
        ],
    ));
    h.node.submit_transaction(pay).unwrap();

    // Bob initiates a backward transfer of his 200 to an MC address.
    // (submit after the payment lands in the next SC block)
    h.step(vec![]);
    let bob_utxo = h.node.utxos_of(&bob_addr)[0];
    let bob_mc_addr = Address::from_label("bob-mainchain");
    let bt = ScTransaction::BackwardTransfer(zendoo_latus::tx::BackwardTransferTx::create(
        vec![(bob_utxo, &bob.secret)],
        vec![(bob_mc_addr, Amount::from_units(200))],
    ));
    h.node.submit_transaction(bt).unwrap();

    let cert1 = h.run_epoch(vec![]);
    assert_eq!(cert1.epoch_id, 1);
    assert_eq!(cert1.bt_list.len(), 1);
    assert_eq!(cert1.bt_list[0].receiver, bob_mc_addr);
    assert_eq!(cert1.bt_list[0].amount, Amount::from_units(200));

    // --- The payout matures when epoch 1's submission window closes.
    while h.chain.state().utxos.balance_of(&bob_mc_addr).is_zero() {
        h.step(vec![]);
    }
    assert_eq!(
        h.chain.state().utxos.balance_of(&bob_mc_addr),
        Amount::from_units(200)
    );
    // Safeguard balance decreased accordingly.
    assert_eq!(h.sc_balance(), Amount::from_units(300));

    // Conservation: MC utxo total + locked balances == minted.
    let state = h.chain.state();
    assert_eq!(
        state
            .utxos
            .total_value()
            .checked_add(state.registry.total_locked())
            .unwrap(),
        state.minted
    );
}

#[test]
fn btr_pre_validated_synced_and_fulfilled() {
    let mut h = TwoChains::new();
    // Fund the SC user.
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(400),
            Amount::ZERO,
        )
        .unwrap();
    let _cert0 = h.run_epoch(vec![ft]);

    // The user creates a BTR against the epoch-0 certificate's state
    // (e.g. because the SC censors their BT transactions).
    let utxo = h.node.utxos_of(&h.sc_address())[0];
    let mc_receiver = Address::from_label("rescued");
    let btr = h
        .node
        .create_btr(0, &utxo, &h.sc_user.secret, mc_receiver)
        .unwrap();

    // The MC pre-validates and accepts it (Def 4.5), consuming the
    // nullifier.
    h.step(vec![McTransaction::Btr(Box::new(btr.clone()))]);
    assert!(h
        .chain
        .state()
        .registry
        .nullifier_spent(&h.sid, &btr.nullifier));

    // Replay is rejected by the MC.
    h.time += 1;
    let replay = h.chain.mine_next_block(
        h.mc_wallet.address(),
        vec![McTransaction::Btr(Box::new(btr))],
        h.time,
    );
    assert!(replay.is_err());

    // The BTR was synchronized into the SC (it was in the block the node
    // just processed) and will be fulfilled: finish the epoch.
    let cert1 = h.run_epoch(vec![]);
    assert_eq!(cert1.epoch_id, 1);
    assert_eq!(cert1.bt_list.len(), 1, "BTR fulfilled via certificate");
    assert_eq!(cert1.bt_list[0].receiver, mc_receiver);
    assert_eq!(cert1.bt_list[0].amount, Amount::from_units(400));
    // The utxo is gone on the SC.
    assert!(h.node.utxos_of(&h.sc_address()).is_empty());

    // Payout after window close.
    while h.chain.state().utxos.balance_of(&mc_receiver).is_zero() {
        h.step(vec![]);
    }
    assert_eq!(
        h.chain.state().utxos.balance_of(&mc_receiver),
        Amount::from_units(400)
    );
}

#[test]
fn ceased_sidechain_csw_recovery() {
    let mut h = TwoChains::new();
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(250),
            Amount::ZERO,
        )
        .unwrap();
    let _cert0 = h.run_epoch(vec![ft]);
    let utxo = h.node.utxos_of(&h.sc_address())[0];

    // The sidechain "dies": no certificate for epoch 1. Mine past the
    // window without syncing certs.
    let ceasing_height = {
        let entry = h.chain.state().registry.get(&h.sid).unwrap();
        entry.config.schedule.ceasing_height(1)
    };
    while h.chain.height() < ceasing_height {
        h.time += 1;
        h.chain
            .mine_next_block(h.mc_wallet.address(), vec![], h.time)
            .unwrap();
    }
    assert_eq!(
        h.chain.state().registry.get(&h.sid).unwrap().status,
        SidechainStatus::Ceased
    );

    // The user recovers via CSW, anchored to the epoch-0 certificate.
    let rescue = Address::from_label("rescue");
    let csw = h
        .node
        .create_csw(0, &utxo, &h.sc_user.secret, rescue)
        .unwrap();
    h.time += 1;
    h.chain
        .mine_next_block(
            h.mc_wallet.address(),
            vec![McTransaction::Csw(Box::new(csw.clone()))],
            h.time,
        )
        .unwrap();
    assert_eq!(
        h.chain.state().utxos.balance_of(&rescue),
        Amount::from_units(250)
    );
    assert_eq!(h.sc_balance(), Amount::ZERO);

    // Double-claim rejected by the nullifier set.
    h.time += 1;
    assert!(h
        .chain
        .mine_next_block(
            h.mc_wallet.address(),
            vec![McTransaction::Csw(Box::new(csw))],
            h.time,
        )
        .is_err());
}

#[test]
fn historical_csw_survives_data_withholding() {
    // E11 / Appendix A: ownership proven at epoch 0, then delta links
    // across epoch 1 show the slot untouched — the user never needs the
    // (withheld) epoch-1 state.
    let mut h = TwoChains::new();
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(123),
            Amount::ZERO,
        )
        .unwrap();
    let _cert0 = h.run_epoch(vec![ft]);
    let utxo = h.node.utxos_of(&h.sc_address())[0];

    // Epoch 1 passes with unrelated activity (none touching our slot).
    let cert1 = h.run_epoch(vec![]);
    assert_eq!(cert1.epoch_id, 1);

    // The sidechain then ceases (no certificate for epoch 2).
    let ceasing_height = {
        let entry = h.chain.state().registry.get(&h.sid).unwrap();
        entry.config.schedule.ceasing_height(2)
    };
    while h.chain.height() < ceasing_height {
        h.time += 1;
        h.chain
            .mine_next_block(h.mc_wallet.address(), vec![], h.time)
            .unwrap();
    }

    // The user holds only: their utxo, the public certs, and the public
    // epoch deltas (broadcast with each certificate).
    let mut deltas = BTreeMap::new();
    deltas.insert(1u32, h.node.epoch_delta(1).unwrap().clone());
    let rescue = Address::from_label("survivor");
    let csw = h
        .node
        .create_historical_csw(0, 1, &utxo, &h.sc_user.secret, rescue, &deltas)
        .unwrap();
    h.time += 1;
    h.chain
        .mine_next_block(
            h.mc_wallet.address(),
            vec![McTransaction::Csw(Box::new(csw))],
            h.time,
        )
        .unwrap();
    assert_eq!(
        h.chain.state().utxos.balance_of(&rescue),
        Amount::from_units(123)
    );
}

#[test]
fn multi_epoch_chain_of_certificates() {
    let mut h = TwoChains::new();
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(100),
            Amount::ZERO,
        )
        .unwrap();
    let mut pending = vec![ft];
    for epoch in 0u32..4 {
        let cert = h.run_epoch(std::mem::take(&mut pending));
        assert_eq!(cert.epoch_id, epoch);
        // Quality strictly increases (it is the SC chain height).
        if epoch > 0 {
            let prev = h.node.certificate_for(epoch - 1).unwrap();
            assert!(cert.quality > prev.quality);
        }
    }
    assert_eq!(
        h.chain.state().registry.get(&h.sid).unwrap().status,
        SidechainStatus::Active
    );
    assert_eq!(h.node.balance_of(&h.sc_address()), Amount::from_units(100));
}

#[test]
fn mainchain_reorg_rolls_back_sidechain() {
    // E7's binding property: when the MC reorganizes, the SC node
    // reverts blocks referencing the abandoned branch.
    let mut h = TwoChains::new();
    let fork_base_height = h.chain.height();
    let fork_base = h.chain.tip_hash();

    // Branch A: one block with an FT, synced by the node.
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(77),
            Amount::ZERO,
        )
        .unwrap();
    h.step(vec![ft]);
    assert_eq!(h.node.balance_of(&h.sc_address()), Amount::from_units(77));

    // Branch B (heavier): two empty blocks from the fork base.
    let mut alt = Blockchain::new(h.chain.params().clone());
    for height in 1..=fork_base_height {
        alt.submit_block(h.chain.block_at_height(height).unwrap().clone())
            .unwrap();
    }
    let b1 = alt
        .mine_next_block(h.mc_wallet.address(), vec![], 800)
        .unwrap();
    let b2 = alt
        .mine_next_block(h.mc_wallet.address(), vec![], 801)
        .unwrap();
    h.chain.submit_block(b1.clone()).unwrap();
    h.chain.submit_block(b2.clone()).unwrap();

    // The node observes the reorg: roll back to the fork base and
    // re-sync the new branch.
    let reverted = h.node.rollback_to_mc(&fork_base).unwrap();
    assert_eq!(reverted, 1);
    assert_eq!(h.node.balance_of(&h.sc_address()), Amount::ZERO);
    h.node.sync_mainchain_block(&b1).unwrap();
    h.node.sync_mainchain_block(&b2).unwrap();
    h.synced_height = h.chain.height();
    assert_eq!(h.node.chain().len(), 2, "one block per new-branch MC block");
}
