//! Multi-node agreement (paper §5.1's decentralization): a forger and an
//! independent validator process the same mainchain; the validator
//! checks every block (linkage, leadership, stateful validity) and ends
//! with an identical state — and, holding the same witnesses, produces a
//! byte-identical certificate.

mod common;

use common::TwoChains;
use std::sync::Arc;
use zendoo_core::ids::{Address, Amount};
use zendoo_latus::consensus::ConsensusParams;
use zendoo_latus::node::LatusNode;
use zendoo_latus::params::LatusParams;
use zendoo_latus::tx::{PaymentTx, ReceiverMetadata, ScTransaction};
use zendoo_mainchain::transaction::McTransaction;
use zendoo_primitives::schnorr::Keypair;

#[test]
fn validator_follows_forger_and_agrees() {
    let mut h = TwoChains::new("two-nodes");
    let params = LatusParams::new(h.sid, common::MST_DEPTH);
    let mut validator = LatusNode::new(
        params,
        h.schedule,
        ConsensusParams::with_bootstrap(Keypair::from_seed(b"forger").public),
        Arc::clone(&h.keys),
        Keypair::from_seed(b"validator"),
        h.chain.tip_hash(),
    );

    // Epoch 0 with an FT; the validator receives each forged block.
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(2_000),
            Amount::ZERO,
        )
        .unwrap();
    let mut pending = vec![ft];
    while !h.node.epoch_complete() {
        h.time += 1;
        let mc_block = h
            .chain
            .mine_next_block(h.mc_wallet.address(), std::mem::take(&mut pending), h.time)
            .unwrap();
        let sc_block = h.node.sync_mainchain_block(&mc_block).unwrap();
        validator.receive_block(&sc_block, &mc_block).unwrap();
    }

    // Same state, same digest.
    assert_eq!(validator.state().digest(), h.node.state().digest());
    assert_eq!(validator.chain().len(), h.node.chain().len());
    assert_eq!(
        validator.balance_of(&h.sc_address()),
        Amount::from_units(2_000)
    );

    // Both produce the same certificate — including the proof bytes
    // (deterministic proving under shared keys).
    let cert_forger = h.node.produce_certificate().unwrap();
    let cert_validator = validator.produce_certificate().unwrap();
    assert_eq!(cert_forger, cert_validator);
}

#[test]
fn validator_rejects_tampered_blocks() {
    let mut h = TwoChains::new("two-nodes-tamper");
    let params = LatusParams::new(h.sid, common::MST_DEPTH);
    let mut validator = LatusNode::new(
        params,
        h.schedule,
        ConsensusParams::with_bootstrap(Keypair::from_seed(b"forger").public),
        Arc::clone(&h.keys),
        Keypair::from_seed(b"validator"),
        h.chain.tip_hash(),
    );

    h.time += 1;
    let mc_block = h
        .chain
        .mine_next_block(h.mc_wallet.address(), vec![], h.time)
        .unwrap();
    let sc_block = h.node.sync_mainchain_block(&mc_block).unwrap();

    // Tamper the claimed post-state digest.
    let mut forged = sc_block.clone();
    forged.header.state_digest = zendoo_primitives::field::Fp::from_u64(777);
    assert!(validator.receive_block(&forged, &mc_block).is_err());

    // Tamper the tx root.
    let mut forged = sc_block.clone();
    forged.header.tx_root = zendoo_primitives::digest::Digest32::hash_bytes(b"lie");
    assert!(validator.receive_block(&forged, &mc_block).is_err());

    // Smuggle in an unsigned payment.
    let mut forged = sc_block.clone();
    forged.transactions.push(ScTransaction::Payment(PaymentTx {
        inputs: vec![],
        outputs: vec![],
    }));
    assert!(validator.receive_block(&forged, &mc_block).is_err());

    // The honest block is accepted afterwards (state unchanged by the
    // failed attempts).
    validator.receive_block(&sc_block, &mc_block).unwrap();
    assert_eq!(validator.state().digest(), h.node.state().digest());
}

#[test]
fn unstaked_non_authority_forger_cannot_extend_the_chain() {
    // After the first epoch the chain is staked; a node whose forger is
    // neither the bootstrap authority nor a stakeholder can follow the
    // chain as a validator but cannot forge.
    let mut h = TwoChains::new("two-nodes-leadership");
    let params = LatusParams::new(h.sid, common::MST_DEPTH);
    let authority = Keypair::from_seed(b"forger").public;
    let mut rogue = LatusNode::new(
        params,
        h.schedule,
        ConsensusParams::with_bootstrap(authority),
        Arc::clone(&h.keys),
        Keypair::from_seed(b"rogue"),
        h.chain.tip_hash(),
    );

    // Epoch 0: fund the SC while the rogue follows as validator.
    let meta = ReceiverMetadata {
        receiver: h.sc_address(),
        payback: h.mc_wallet.address(),
    };
    let ft = h
        .mc_wallet
        .forward_transfer(
            &h.chain,
            h.sid,
            meta.to_bytes(),
            Amount::from_units(5_000),
            Amount::ZERO,
        )
        .unwrap();
    let mut pending = vec![ft];
    while !h.node.epoch_complete() {
        h.time += 1;
        let mc_block = h
            .chain
            .mine_next_block(h.mc_wallet.address(), std::mem::take(&mut pending), h.time)
            .unwrap();
        let sc_block = h.node.sync_mainchain_block(&mc_block).unwrap();
        rogue.receive_block(&sc_block, &mc_block).unwrap();
    }
    // Both close the epoch; the rogue's stake snapshot refreshes and is
    // non-empty (the SC user holds all the stake).
    let cert = h.node.produce_certificate().unwrap();
    let _ = rogue.produce_certificate().unwrap();

    // The rogue now tries to forge the next block itself: the lottery
    // never selects an unstaked forger.
    h.time += 1;
    let mc_block = h
        .chain
        .mine_next_block(
            h.mc_wallet.address(),
            vec![McTransaction::Certificate(Box::new(cert))],
            h.time,
        )
        .unwrap();
    let err = rogue.sync_mainchain_block(&mc_block);
    assert!(err.is_err(), "unstaked non-authority forger must not forge");

    // And tampering a valid block's forger identity fails validation:
    let honest_block = h.node.sync_mainchain_block(&mc_block).unwrap();
    let mut forged = honest_block.clone();
    forged.header.forger = Keypair::from_seed(b"rogue").public;
    assert!(rogue.receive_block(&forged, &mc_block).is_err());
    let _ = Address::from_label("unused");
}
