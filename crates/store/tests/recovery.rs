//! Kill-and-recover tests: the journal must bring a reopened store to
//! a state bit-identical to the chain that fed it, and a torn tail
//! (crash mid-write) must be discarded, never half-applied.

use std::path::PathBuf;

use zendoo_core::ids::Amount;
use zendoo_mainchain::chain::{Blockchain, ChainParams};
use zendoo_mainchain::wallet::Wallet;
use zendoo_mainchain::{ChainEvent, TxOut};
use zendoo_store::{chain_state_digest, Indexer, UtxoStore};
use zendoo_telemetry::Telemetry;

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("zendoo-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn funded_chain(alice: &Wallet) -> Blockchain {
    let params = ChainParams {
        genesis_outputs: vec![TxOut::regular(
            alice.address(),
            Amount::from_units(1_000_000),
        )],
        ..ChainParams::default()
    };
    Blockchain::new(params)
}

/// Drains the chain's pending events into the store, committing once.
fn sync(chain: &mut Blockchain, store: &mut UtxoStore) {
    for event in chain.drain_events() {
        store.apply_event(&event).expect("event applies");
    }
    store.commit().expect("commit");
}

#[test]
fn store_mirrors_chain_and_recovers_after_kill() {
    let alice = Wallet::from_seed(b"recovery-alice");
    let bob = Wallet::from_seed(b"recovery-bob");
    let miner = Wallet::from_seed(b"recovery-miner");
    let mut chain = funded_chain(&alice);
    let dir = temp_dir("kill");

    chain.enable_event_log();
    let mut store = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    assert!(!store.is_seeded());
    store.bootstrap(&chain).unwrap();
    assert_eq!(store.state_digest(), chain_state_digest(&chain));

    for height in 1..=8u64 {
        let txs = if height % 2 == 0 {
            let pay = alice
                .pay(
                    &chain,
                    bob.address(),
                    Amount::from_units(1_000 * height),
                    Amount::from_units(10),
                )
                .expect("alice is funded");
            vec![pay]
        } else {
            vec![]
        };
        chain
            .mine_next_block(miner.address(), txs, height)
            .expect("block mines");
        sync(&mut chain, &mut store);
        assert_eq!(
            store.state_digest(),
            chain_state_digest(&chain),
            "persisted diverged from in-memory at height {height}"
        );
    }
    let final_digest = store.state_digest();
    let final_count = store.utxo_count();
    // Kill: drop without any graceful-shutdown hook.
    drop(store);

    let recovered = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    assert_eq!(recovered.state_digest(), final_digest);
    assert_eq!(recovered.utxo_count(), final_count);
    assert_eq!(recovered.height(), 8);
    assert_eq!(recovered.tip(), chain.tip_hash());
    // 1 snapshot + 8 connects, no torn bytes on a clean kill.
    assert_eq!(recovered.replay_stats().records, 9);
    assert_eq!(recovered.replay_stats().torn_bytes, 0);

    // The recovered store serves queries identical to the chain.
    assert_eq!(
        recovered.balance_of(&bob.address()),
        chain.state().utxos.balance_of(&bob.address())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_record_is_discarded_and_syncing_resumes() {
    let alice = Wallet::from_seed(b"torn-alice");
    let miner = Wallet::from_seed(b"torn-miner");
    let mut chain = funded_chain(&alice);
    let dir = temp_dir("torn");

    chain.enable_event_log();
    let mut store = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    store.bootstrap(&chain).unwrap();
    for height in 1..=5u64 {
        chain
            .mine_next_block(miner.address(), vec![], height)
            .unwrap();
        sync(&mut chain, &mut store);
    }
    let committed_digest = store.state_digest();
    drop(store);

    // Crash mid-append: a frame header promising a record that was
    // never fully written.
    let journal = dir.join("utxo-journal.log");
    let mut contents = std::fs::read(&journal).unwrap();
    contents.extend_from_slice(&500u32.to_be_bytes());
    contents.extend_from_slice(&[0x5A; 37]);
    std::fs::write(&journal, &contents).unwrap();

    let mut recovered = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    assert_eq!(recovered.state_digest(), committed_digest);
    assert_eq!(recovered.replay_stats().torn_bytes, 41);
    assert_eq!(recovered.height(), 5);

    // Recovery truncated the tail, so the stream continues cleanly.
    chain.mine_next_block(miner.address(), vec![], 6).unwrap();
    sync(&mut chain, &mut recovered);
    assert_eq!(recovered.state_digest(), chain_state_digest(&chain));
    drop(recovered);

    // And the continuation survives another kill.
    let reopened = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    assert_eq!(reopened.state_digest(), chain_state_digest(&chain));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disconnect_events_roll_the_store_back() {
    let alice = Wallet::from_seed(b"rollback-alice");
    let miner = Wallet::from_seed(b"rollback-miner");
    let mut chain = funded_chain(&alice);
    let dir = temp_dir("rollback");

    chain.enable_event_log();
    let mut store = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    store.bootstrap(&chain).unwrap();
    chain.mine_next_block(miner.address(), vec![], 1).unwrap();
    let digest_at_1 = chain_state_digest(&chain);
    chain.mine_next_block(miner.address(), vec![], 2).unwrap();

    let events = chain.drain_events();
    assert_eq!(events.len(), 2);
    for event in &events {
        store.apply_event(event).unwrap();
    }

    // Hand-build the inverse of block 2's connect — exactly what a
    // reorg emits — and apply it.
    let ChainEvent::Connected {
        hash,
        height,
        created,
        spent,
    } = events[1].clone()
    else {
        panic!("second event must be a connect");
    };
    let parent = match &events[0] {
        ChainEvent::Connected { hash, .. } => *hash,
        _ => panic!("first event must be a connect"),
    };
    let rollback = ChainEvent::Disconnected {
        hash,
        height,
        parent,
        created: created.iter().map(|(op, _)| *op).collect(),
        spent,
    };
    store.apply_event(&rollback).unwrap();
    store.commit().unwrap();
    assert_eq!(store.state_digest(), digest_at_1);

    // The rollback itself is journaled: recovery replays it too.
    drop(store);
    let recovered = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    assert_eq!(recovered.state_digest(), digest_at_1);
    assert_eq!(recovered.height(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn indexer_tracks_balances_from_store_deltas() {
    let alice = Wallet::from_seed(b"index-alice");
    let bob = Wallet::from_seed(b"index-bob");
    let miner = Wallet::from_seed(b"index-miner");
    let mut chain = funded_chain(&alice);
    let dir = temp_dir("index");

    chain.enable_event_log();
    let mut store = UtxoStore::open(&dir, Telemetry::disabled()).unwrap();
    store.bootstrap(&chain).unwrap();
    let mut indexer = Indexer::from_store(&store, Telemetry::disabled());
    assert_eq!(
        indexer.balance(&alice.address()),
        Amount::from_units(1_000_000)
    );

    let pay = alice
        .pay(
            &chain,
            bob.address(),
            Amount::from_units(25_000),
            Amount::ZERO,
        )
        .unwrap();
    chain
        .mine_next_block(miner.address(), vec![pay], 1)
        .unwrap();
    for event in chain.drain_events() {
        let delta = store.apply_event(&event).unwrap();
        indexer.apply(&delta);
    }
    store.commit().unwrap();

    assert_eq!(indexer.balance(&bob.address()), Amount::from_units(25_000));
    assert_eq!(
        indexer.balance(&alice.address()),
        chain.state().utxos.balance_of(&alice.address())
    );
    // Cold-start rebuild agrees with the incrementally maintained one.
    let rebuilt = Indexer::from_store(&store, Telemetry::disabled());
    assert_eq!(
        rebuilt.balance(&bob.address()),
        indexer.balance(&bob.address())
    );
    assert_eq!(rebuilt.pending_total(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
