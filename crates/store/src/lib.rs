//! Persistent UTXO storage and chain indexing for the Zendoo
//! mainchain.
//!
//! Two layers:
//!
//! - [`UtxoStore`] — a durable mirror of the active chain's UTXO set,
//!   backed by an append-only [`Journal`]. Every
//!   [`zendoo_mainchain::ChainEvent`] (connect or disconnect, drained
//!   from [`zendoo_mainchain::Blockchain::drain_events`]) is written as
//!   one checksummed journal record *before* it is applied in memory;
//!   [`UtxoStore::commit`] fsyncs the file, making everything up to the
//!   last committed block durable. Reopening the same directory replays
//!   the journal — a torn or corrupt tail (a crash mid-write) is
//!   detected by checksum and discarded, so recovery always lands on
//!   the last committed block, bit-identical to the in-memory state
//!   that produced it ([`UtxoStore::state_digest`] /
//!   [`chain_state_digest`]).
//!
//! - [`Indexer`] — secondary indexes derived from the store's applied
//!   deltas: per-address balances, per-sidechain **pending inbound**
//!   transfers (escrow-kind UTXOs awaiting settlement, keyed by
//!   nullifier) with an incremental sparse Merkle tree per sidechain,
//!   and settlement receipts ingested from the cross-chain router.
//!
//! The journal reuses the shape of the chain's own
//! [`zendoo_mainchain::BlockUndo`] op-log: connect records carry the
//! block's net created/spent outputs (with spent values retained), so
//! every record is invertible and replay needs no external context.
//!
//! Telemetry: `store.append`, `store.commit`, `store.replay` spans and
//! `store.records_replayed` / `store.torn_bytes_discarded` counters on
//! the store; `indexer.sync` spans and `indexer.query.*` spans on the
//! indexer.

pub mod codec;
pub mod indexer;
pub mod journal;
pub mod store;

pub use indexer::{Indexer, PendingInbound};
pub use journal::{Journal, JournalStats};
pub use store::{chain_state_digest, AppliedDelta, StoreError, UtxoStore};
