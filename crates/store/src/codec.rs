//! Decoding for journal record payloads.
//!
//! The workspace's canonical [`zendoo_primitives::encode::Encode`]
//! trait is write-only (it exists to hash things); the journal is the
//! first component that must read those bytes back. This module is the
//! exact inverse of the `Encode` impls it consumes: fixed-width
//! big-endian integers, length-prefixed sequences, one-byte enum tags.

use zendoo_core::escrow::EscrowTag;
use zendoo_core::ids::{Address, Amount, Nullifier, SidechainId};
use zendoo_mainchain::transaction::OutputKind;
use zendoo_mainchain::{OutPoint, TxOut};
use zendoo_primitives::digest::Digest32;

/// A malformed journal payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A length prefix exceeded the remaining payload.
    BadLength(u64),
    /// Bytes remained after the full record was decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "payload truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            CodecError::BadLength(n) => write!(f, "length prefix {n} exceeds payload"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over one record payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// A big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_be_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// A big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_be_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// A sequence length prefix, validated against a per-element lower
    /// bound so a corrupt prefix cannot provoke a huge allocation.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.u64()?;
        if len as usize > self.remaining() / min_elem_bytes.max(1) {
            return Err(CodecError::BadLength(len));
        }
        Ok(len as usize)
    }

    /// A 32-byte digest.
    pub fn digest32(&mut self) -> Result<Digest32, CodecError> {
        let bytes = self.take(32)?;
        Ok(Digest32(bytes.try_into().expect("32 bytes")))
    }

    /// An [`Amount`].
    pub fn amount(&mut self) -> Result<Amount, CodecError> {
        Ok(Amount::from_units(self.u64()?))
    }

    /// An [`OutPoint`]: txid then output index.
    pub fn outpoint(&mut self) -> Result<OutPoint, CodecError> {
        Ok(OutPoint {
            txid: self.digest32()?,
            index: self.u32()?,
        })
    }

    /// A [`TxOut`]: address, amount, then the output-kind tag (`0` =
    /// regular, `1` = escrow followed by the [`EscrowTag`] fields).
    pub fn txout(&mut self) -> Result<TxOut, CodecError> {
        let address = Address(self.digest32()?);
        let amount = self.amount()?;
        let kind = match self.u8()? {
            0 => OutputKind::Regular,
            1 => OutputKind::Escrow(EscrowTag {
                source: SidechainId(self.digest32()?),
                epoch: self.u32()?,
                dest: SidechainId(self.digest32()?),
                payback: Address(self.digest32()?),
                nullifier: Nullifier(self.digest32()?),
            }),
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(TxOut {
            address,
            amount,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zendoo_primitives::encode::Encode;

    #[test]
    fn txout_roundtrips_both_kinds() {
        let regular = TxOut::regular(Address(Digest32::hash_bytes(b"a")), Amount::from_units(7));
        let escrow = TxOut {
            address: Address(Digest32::hash_bytes(b"marker")),
            amount: Amount::from_units(11),
            kind: OutputKind::Escrow(EscrowTag {
                source: SidechainId(Digest32::hash_bytes(b"src")),
                epoch: 3,
                dest: SidechainId(Digest32::hash_bytes(b"dst")),
                payback: Address(Digest32::hash_bytes(b"pay")),
                nullifier: Nullifier(Digest32::hash_bytes(b"null")),
            }),
        };
        for out in [regular, escrow] {
            let bytes = out.encoded();
            let mut reader = Reader::new(&bytes);
            assert_eq!(reader.txout().unwrap(), out);
            reader.finish().unwrap();
        }
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let out = TxOut::regular(Address(Digest32::hash_bytes(b"a")), Amount::from_units(7));
        let bytes = out.encoded();
        for cut in 0..bytes.len() {
            let mut reader = Reader::new(&bytes[..cut]);
            assert_eq!(reader.txout(), Err(CodecError::UnexpectedEof));
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let huge = u64::MAX.encoded();
        let mut reader = Reader::new(&huge);
        assert!(matches!(
            reader.len_prefix(44),
            Err(CodecError::BadLength(_))
        ));
    }
}
