//! The append-only record journal.
//!
//! On-disk layout: a 4-byte magic header (`ZSJ1`) followed by records,
//! each framed as
//!
//! ```text
//! [len: u32 BE] [fnv1a64(payload): u64 BE] [payload: len bytes]
//! ```
//!
//! Appends buffer in the OS page cache; [`Journal::commit`] issues
//! `fdatasync`, which is the durability point — a record is *committed*
//! once commit returns. A crash mid-append leaves a torn tail: a frame
//! whose length field, checksum or payload is incomplete or corrupt.
//! [`Journal::open`] replays records until the first bad frame, then
//! truncates the file back to the last good record, so the torn tail
//! can never be half-applied or shadow later appends.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"ZSJ1";
/// Upper bound on a single record; a length field above this is treated
/// as corruption rather than an allocation request.
const MAX_RECORD: u32 = 1 << 28;

/// What [`Journal::open`] found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Well-formed records replayed.
    pub records: u64,
    /// Torn/corrupt tail bytes discarded (0 after a clean shutdown).
    pub torn_bytes: u64,
}

/// An append-only checksummed record log.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Byte length of the well-formed prefix (everything before this
    /// offset decoded cleanly; the file is truncated to it on open).
    len: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, invoking `replay` for
    /// every well-formed record in append order. A torn or corrupt
    /// tail is counted in the returned stats and truncated away.
    pub fn open(path: &Path, mut replay: impl FnMut(&[u8])) -> io::Result<(Journal, JournalStats)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)?;

        let mut stats = JournalStats::default();
        let mut good = 0usize;
        if contents.len() >= MAGIC.len() && &contents[..MAGIC.len()] == MAGIC {
            good = MAGIC.len();
            loop {
                let rest = &contents[good..];
                if rest.len() < 12 {
                    break; // incomplete frame header: torn tail
                }
                let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
                if len > MAX_RECORD || rest.len() - 12 < len as usize {
                    break; // hostile length or incomplete payload
                }
                let checksum = u64::from_be_bytes(rest[4..12].try_into().expect("8 bytes"));
                let payload = &rest[12..12 + len as usize];
                if fnv1a64(payload) != checksum {
                    break; // corrupt record
                }
                replay(payload);
                stats.records += 1;
                good += 12 + len as usize;
            }
        }
        // good == 0 here means an empty file (fresh journal) or one
        // with no magic header (garbage): start over with a header.
        stats.torn_bytes = (contents.len() - good) as u64;
        if good == 0 {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            good = MAGIC.len();
        } else if stats.torn_bytes > 0 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                len: good as u64,
            },
            stats,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current well-formed length in bytes (including the header).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends one record. Durable only after [`Journal::commit`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(
            payload.len() as u64 <= MAX_RECORD as u64,
            "record exceeds MAX_RECORD"
        );
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_be_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Makes every appended record durable (`fdatasync`).
    pub fn commit(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// FNV-1a 64-bit — cheap, dependency-free corruption detection for
/// record payloads (not a cryptographic integrity guarantee; the state
/// digest comparison provides end-to-end verification).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("zendoo-journal-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn reopen_payloads(path: &Path) -> (Vec<Vec<u8>>, JournalStats) {
        let mut seen = Vec::new();
        let (_, stats) = Journal::open(path, |p| seen.push(p.to_vec())).unwrap();
        (seen, stats)
    }

    #[test]
    fn records_replay_in_order() {
        let path = temp_path("order");
        let (mut journal, _) = Journal::open(&path, |_| panic!("fresh")).unwrap();
        journal.append(b"one").unwrap();
        journal.append(b"two").unwrap();
        journal.commit().unwrap();
        drop(journal);
        let (seen, stats) = reopen_payloads(&path);
        assert_eq!(seen, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(stats.records, 2);
        assert_eq!(stats.torn_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_appends_resume() {
        let path = temp_path("torn");
        let (mut journal, _) = Journal::open(&path, |_| {}).unwrap();
        journal.append(b"committed").unwrap();
        journal.commit().unwrap();
        drop(journal);
        // Simulate a crash mid-append: a frame header promising more
        // payload than was written.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_be_bytes()).unwrap();
        f.write_all(&[0xAA; 20]).unwrap();
        drop(f);

        let (seen, stats) = reopen_payloads(&path);
        assert_eq!(seen, vec![b"committed".to_vec()]);
        assert_eq!(stats.torn_bytes, 24);

        // The truncation must let new appends land cleanly.
        let (mut journal, _) = Journal::open(&path, |_| {}).unwrap();
        journal.append(b"after-recovery").unwrap();
        journal.commit().unwrap();
        drop(journal);
        let (seen, stats) = reopen_payloads(&path);
        assert_eq!(
            seen,
            vec![b"committed".to_vec(), b"after-recovery".to_vec()]
        );
        assert_eq!(stats.torn_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_good() {
        let path = temp_path("corrupt");
        let (mut journal, _) = Journal::open(&path, |_| {}).unwrap();
        journal.append(b"good").unwrap();
        journal.append(b"will-be-flipped").unwrap();
        journal.commit().unwrap();
        drop(journal);
        // Flip one byte inside the last record's payload.
        let mut contents = std::fs::read(&path).unwrap();
        let last = contents.len() - 1;
        contents[last] ^= 0x01;
        std::fs::write(&path, &contents).unwrap();

        let (seen, stats) = reopen_payloads(&path);
        assert_eq!(seen, vec![b"good".to_vec()]);
        assert!(stats.torn_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_without_magic_is_reset() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a journal at all").unwrap();
        let (seen, stats) = reopen_payloads(&path);
        assert!(seen.is_empty());
        assert_eq!(stats.torn_bytes, 20);
        let _ = std::fs::remove_file(&path);
    }
}
