//! Secondary indexes over the persistent UTXO store.
//!
//! The [`Indexer`] consumes the [`crate::AppliedDelta`]s the store
//! emits as it tails mainchain blocks, and maintains what queries need
//! in O(1)/O(log n) instead of scanning the set:
//!
//! - **balances** — per-address sums of regular (non-escrow) outputs;
//! - **pending inbound** — per-destination-sidechain escrow outputs
//!   awaiting settlement, keyed by nullifier, each mirrored as a leaf
//!   of that sidechain's incremental sparse Merkle tree (so a
//!   sidechain can be handed a succinct commitment to everything
//!   headed its way);
//! - **receipts** — terminal cross-chain transfer outcomes ingested
//!   from the router's receipt stream, by nullifier.
//!
//! Receipts live with the router, not the journal; after a restart the
//! indexer's chain-derived indexes rebuild from the store
//! ([`Indexer::from_store`]) and receipts re-ingest from the router's
//! log.

use std::collections::BTreeMap;

use zendoo_core::crosschain::CrossChainReceipt;
use zendoo_core::ids::{Address, Amount, EpochId, Nullifier, SidechainId};
use zendoo_mainchain::transaction::OutputKind;
use zendoo_mainchain::OutPoint;
use zendoo_primitives::field::Fp;
use zendoo_primitives::smt::SparseMerkleTree;
use zendoo_telemetry::Telemetry;

use crate::store::{AppliedDelta, UtxoStore};

/// Depth of each per-sidechain inbound tree: 2^48 slots keeps the
/// birthday-collision probability negligible at 10^5 pending transfers
/// while an insert touches only 48 nodes.
const INBOUND_TREE_DEPTH: u32 = 48;

/// One escrowed transfer waiting to enter its destination sidechain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingInbound {
    /// The escrow UTXO holding the value.
    pub outpoint: OutPoint,
    /// The paying sidechain.
    pub source: SidechainId,
    /// The source certificate's withdrawal epoch.
    pub epoch: EpochId,
    /// The destination sidechain.
    pub dest: SidechainId,
    /// Refund address if delivery becomes impossible.
    pub payback: Address,
    /// The transfer's one-shot identifier.
    pub nullifier: Nullifier,
    /// Escrowed value.
    pub amount: Amount,
    /// The slot this transfer occupies in its destination's inbound
    /// tree (needed to clear the leaf on settlement).
    pub leaf_index: u64,
}

/// Chain-derived secondary indexes. See the module docs.
pub struct Indexer {
    balances: BTreeMap<Address, Amount>,
    pending: BTreeMap<SidechainId, BTreeMap<Nullifier, PendingInbound>>,
    trees: BTreeMap<SidechainId, SparseMerkleTree>,
    receipts: BTreeMap<Nullifier, CrossChainReceipt>,
    telemetry: Telemetry,
}

impl Indexer {
    /// An empty indexer.
    pub fn new(telemetry: Telemetry) -> Self {
        Indexer {
            balances: BTreeMap::new(),
            pending: BTreeMap::new(),
            trees: BTreeMap::new(),
            receipts: BTreeMap::new(),
            telemetry,
        }
    }

    /// Cold-start: rebuilds every chain-derived index by scanning the
    /// (already replayed) store. Records an `indexer.coldstart` span.
    pub fn from_store(store: &UtxoStore, telemetry: Telemetry) -> Self {
        let mut indexer = Indexer::new(telemetry.clone());
        let seed = AppliedDelta {
            added: store.iter().map(|(op, out)| (*op, *out)).collect(),
            removed: Vec::new(),
        };
        let (_, _nanos) = telemetry.time("indexer.coldstart", || indexer.apply(&seed));
        indexer
    }

    /// Applies one store delta. Records an `indexer.sync` span.
    pub fn apply(&mut self, delta: &AppliedDelta) {
        let balances = &mut self.balances;
        let pending = &mut self.pending;
        let trees = &mut self.trees;
        let telemetry = &self.telemetry;
        telemetry.time("indexer.sync", || {
            for (outpoint, out) in &delta.removed {
                match out.kind {
                    OutputKind::Regular => {
                        debit(balances, &out.address, out.amount);
                    }
                    OutputKind::Escrow(tag) => {
                        let by_nullifier = pending.get_mut(&tag.dest);
                        let entry = by_nullifier.and_then(|map| map.remove(&tag.nullifier));
                        debug_assert!(entry.is_some(), "settled escrow was never indexed");
                        if let Some(entry) = entry {
                            debug_assert_eq!(entry.outpoint, *outpoint);
                            let tree = trees.get_mut(&tag.dest).expect("tree exists with entry");
                            tree.remove(entry.leaf_index)
                                .expect("leaf set when entry was indexed");
                        }
                    }
                }
            }
            for (outpoint, out) in &delta.added {
                match out.kind {
                    OutputKind::Regular => {
                        credit(balances, &out.address, out.amount);
                    }
                    OutputKind::Escrow(tag) => {
                        let tree = trees
                            .entry(tag.dest)
                            .or_insert_with(|| SparseMerkleTree::new(INBOUND_TREE_DEPTH));
                        let (leaf_index, leaf) = inbound_leaf(tree, &tag.nullifier);
                        tree.insert(leaf_index, leaf)
                            .expect("probed slot was empty");
                        let entry = PendingInbound {
                            outpoint: *outpoint,
                            source: tag.source,
                            epoch: tag.epoch,
                            dest: tag.dest,
                            payback: tag.payback,
                            nullifier: tag.nullifier,
                            amount: out.amount,
                            leaf_index,
                        };
                        let previous = pending
                            .entry(tag.dest)
                            .or_default()
                            .insert(tag.nullifier, entry);
                        debug_assert!(previous.is_none(), "nullifier escrowed twice");
                    }
                }
            }
        });
    }

    /// Ingests terminal transfer outcomes from the router's receipt
    /// stream (pass the slice a cursor-tracked
    /// `CrossChainRouter::receipts_since` returned).
    pub fn ingest_receipts(&mut self, receipts: &[CrossChainReceipt]) {
        for receipt in receipts {
            self.receipts
                .insert(receipt.transfer.nullifier, receipt.clone());
        }
    }

    /// Balance of `address` (regular outputs only). Records an
    /// `indexer.query.balance` span.
    pub fn balance(&self, address: &Address) -> Amount {
        let balances = &self.balances;
        let (amount, _nanos) = self.telemetry.time("indexer.query.balance", || {
            balances.get(address).copied().unwrap_or(Amount::ZERO)
        });
        amount
    }

    /// Number of addresses holding a non-zero balance.
    pub fn funded_addresses(&self) -> usize {
        self.balances.len()
    }

    /// The transfers currently escrowed toward `dest`, in nullifier
    /// order. Records an `indexer.query.pending` span.
    pub fn pending_inbound(&self, dest: &SidechainId) -> Vec<PendingInbound> {
        let pending = &self.pending;
        let (list, _nanos) = self.telemetry.time("indexer.query.pending", || {
            pending
                .get(dest)
                .map(|map| map.values().copied().collect())
                .unwrap_or_default()
        });
        list
    }

    /// One pending inbound transfer by destination and nullifier.
    /// Records an `indexer.query.pending` span.
    pub fn pending_inbound_for(
        &self,
        dest: &SidechainId,
        nullifier: &Nullifier,
    ) -> Option<PendingInbound> {
        let pending = &self.pending;
        let (found, _nanos) = self.telemetry.time("indexer.query.pending", || {
            pending
                .get(dest)
                .and_then(|map| map.get(nullifier))
                .copied()
        });
        found
    }

    /// Number of transfers escrowed toward `dest`.
    pub fn pending_inbound_count(&self, dest: &SidechainId) -> usize {
        self.pending.get(dest).map(BTreeMap::len).unwrap_or(0)
    }

    /// Total pending inbound transfers across all destinations.
    pub fn pending_total(&self) -> usize {
        self.pending.values().map(BTreeMap::len).sum()
    }

    /// Total value escrowed toward `dest`.
    pub fn pending_inbound_value(&self, dest: &SidechainId) -> Amount {
        self.pending
            .get(dest)
            .map(|map| {
                Amount::checked_sum(map.values().map(|p| p.amount)).expect("chain-invariant sum")
            })
            .unwrap_or(Amount::ZERO)
    }

    /// Root of `dest`'s incremental inbound tree — a succinct
    /// commitment to every transfer currently headed its way. `None`
    /// until the first escrow toward `dest` is observed.
    pub fn inbound_root(&self, dest: &SidechainId) -> Option<Fp> {
        self.trees.get(dest).map(SparseMerkleTree::root)
    }

    /// The terminal outcome of a transfer, by nullifier. Records an
    /// `indexer.query.receipt` span.
    pub fn receipt_for(&self, nullifier: &Nullifier) -> Option<&CrossChainReceipt> {
        let receipts = &self.receipts;
        let (found, _nanos) = self
            .telemetry
            .time("indexer.query.receipt", || receipts.get(nullifier));
        found
    }

    /// Number of receipts ingested.
    pub fn receipt_count(&self) -> usize {
        self.receipts.len()
    }
}

fn credit(balances: &mut BTreeMap<Address, Amount>, address: &Address, amount: Amount) {
    let entry = balances.entry(*address).or_insert(Amount::ZERO);
    *entry = entry.checked_add(amount).expect("chain-invariant sum");
}

fn debit(balances: &mut BTreeMap<Address, Amount>, address: &Address, amount: Amount) {
    let Some(entry) = balances.get_mut(address) else {
        debug_assert!(false, "debit of an unindexed address");
        return;
    };
    *entry = entry.checked_sub(amount).unwrap_or_else(|| {
        debug_assert!(false, "balance underflow: spent more than indexed");
        Amount::ZERO
    });
    if entry.is_zero() {
        balances.remove(address);
    }
}

/// Deterministic tree slot + leaf for a nullifier: the slot is the
/// nullifier's leading 64 bits reduced to the tree's capacity, probed
/// linearly past occupied slots (collisions are resolved identically
/// on every node, so roots stay comparable); the leaf is the
/// Poseidon-field reduction of the nullifier digest, never the empty
/// sentinel.
fn inbound_leaf(tree: &SparseMerkleTree, nullifier: &Nullifier) -> (u64, Fp) {
    let bytes = nullifier.0 .0;
    let wide = u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"));
    let capacity = tree.capacity();
    let mut index = wide % capacity;
    while tree.is_occupied(index) {
        index = (index + 1) % capacity;
    }
    (index, Fp::from_be_bytes_reduced(&bytes))
}
