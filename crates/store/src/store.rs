//! The journaled persistent UTXO store.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use zendoo_core::ids::{Address, Amount};
use zendoo_mainchain::{Blockchain, ChainEvent, OutPoint, TxOut};
use zendoo_primitives::digest::Digest32;
use zendoo_primitives::encode::Encode;
use zendoo_telemetry::Telemetry;

use crate::codec::{CodecError, Reader};
use crate::journal::{Journal, JournalStats};

const JOURNAL_FILE: &str = "utxo-journal.log";

/// Record tags (first payload byte).
const TAG_SNAPSHOT: u8 = 0;
const TAG_CONNECT: u8 = 1;
const TAG_DISCONNECT: u8 = 2;

/// Storage-layer failures.
#[derive(Debug)]
pub enum StoreError {
    /// The journal file could not be read or written.
    Io(io::Error),
    /// A journal record passed its checksum but failed to decode —
    /// a format-version mismatch or a writer bug, never silent.
    Codec(CodecError),
    /// An event does not follow the store's tip (wrong height or
    /// parent) — the event stream and the store diverged.
    Discontinuity {
        /// What the store expected next.
        expected: String,
        /// What the event carried.
        got: String,
    },
    /// An event referenced a UTXO the store does not have (or already
    /// has, for a creation) — the mirrored set is corrupt.
    Inconsistent(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "journal io: {e}"),
            StoreError::Codec(e) => write!(f, "journal record: {e}"),
            StoreError::Discontinuity { expected, got } => {
                write!(
                    f,
                    "event stream discontinuity: expected {expected}, got {got}"
                )
            }
            StoreError::Inconsistent(what) => write!(f, "utxo mirror inconsistent: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// The net UTXO-set change one applied event produced, with full
/// values on both sides — secondary indexes ([`crate::Indexer`])
/// update from these without keeping their own copy of the set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedDelta {
    /// Outputs now present that were not before.
    pub added: Vec<(OutPoint, TxOut)>,
    /// Outputs removed (their last values).
    pub removed: Vec<(OutPoint, TxOut)>,
}

/// In-memory mirror + append-only journal of the active chain's UTXO
/// set. See the crate docs for the durability contract.
pub struct UtxoStore {
    journal: Journal,
    utxos: BTreeMap<OutPoint, TxOut>,
    tip: Digest32,
    height: u64,
    /// `false` until a snapshot record seeds the store (a freshly
    /// created journal has no baseline yet).
    seeded: bool,
    replay_stats: JournalStats,
    telemetry: Telemetry,
}

impl UtxoStore {
    /// Opens (creating if needed) the store persisted in `dir`,
    /// replaying the journal into memory. Records a `store.replay`
    /// span plus `store.records_replayed` / `store.torn_bytes_discarded`
    /// counters.
    pub fn open(dir: &Path, telemetry: Telemetry) -> Result<UtxoStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);

        let mut utxos = BTreeMap::new();
        let mut tip = Digest32::ZERO;
        let mut height = 0u64;
        let mut seeded = false;
        let mut replay_error: Option<StoreError> = None;

        let (opened, _nanos) = telemetry.time("store.replay", || {
            Journal::open(&path, |payload| {
                if replay_error.is_some() {
                    return;
                }
                if let Err(e) =
                    replay_record(payload, &mut utxos, &mut tip, &mut height, &mut seeded)
                {
                    replay_error = Some(e);
                }
            })
        });
        let (journal, stats) = opened?;
        if let Some(e) = replay_error {
            return Err(e);
        }
        telemetry.counter("store.records_replayed", stats.records);
        telemetry.counter("store.torn_bytes_discarded", stats.torn_bytes);

        Ok(UtxoStore {
            journal,
            utxos,
            tip,
            height,
            seeded,
            replay_stats: stats,
            telemetry,
        })
    }

    /// Returns `true` once a snapshot baseline exists (i.e. the store
    /// was bootstrapped, this run or a previous one).
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// What the opening replay found on disk.
    pub fn replay_stats(&self) -> &JournalStats {
        &self.replay_stats
    }

    /// Seeds a fresh store with a full snapshot of `chain`'s current
    /// state (committed immediately). Events recorded *before* the
    /// snapshot's tip must not be applied afterwards; bootstrap right
    /// after [`Blockchain::enable_event_log`], before the next block.
    pub fn bootstrap(&mut self, chain: &Blockchain) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        TAG_SNAPSHOT.encode_into(&mut payload);
        chain.tip_hash().encode_into(&mut payload);
        chain.height().encode_into(&mut payload);
        let mut entries: Vec<(OutPoint, TxOut)> = chain
            .state()
            .utxos
            .iter()
            .map(|(op, out)| (*op, *out))
            .collect();
        entries.sort_by_key(|(op, _)| *op);
        encode_pairs(&mut payload, &entries);

        self.journal.append(&payload)?;
        self.utxos = entries.into_iter().collect();
        self.tip = chain.tip_hash();
        self.height = chain.height();
        self.seeded = true;
        self.commit()?;
        Ok(())
    }

    /// Journals and applies one chain event, returning the net delta.
    /// Durable only after [`UtxoStore::commit`]. Records a
    /// `store.append` span.
    pub fn apply_event(&mut self, event: &ChainEvent) -> Result<AppliedDelta, StoreError> {
        let journal = &mut self.journal;
        let utxos = &mut self.utxos;
        let tip = &mut self.tip;
        let height = &mut self.height;
        let seeded = self.seeded;
        let (result, _nanos) = self.telemetry.time("store.append", || {
            let payload = encode_event(event);
            journal.append(&payload)?;
            apply_event_to(event, utxos, tip, height, seeded)
        });
        result
    }

    /// Fsyncs the journal: everything applied so far becomes durable.
    /// Records a `store.commit` span and a `store.utxos` gauge.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        let journal = &mut self.journal;
        let (result, _nanos) = self.telemetry.time("store.commit", || journal.commit());
        self.telemetry.gauge("store.utxos", self.utxos.len() as u64);
        result?;
        Ok(())
    }

    /// The persisted tip hash.
    pub fn tip(&self) -> Digest32 {
        self.tip
    }

    /// The persisted tip height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Number of UTXOs in the mirrored set.
    pub fn utxo_count(&self) -> usize {
        self.utxos.len()
    }

    /// Looks up one output.
    pub fn get(&self, outpoint: &OutPoint) -> Option<&TxOut> {
        self.utxos.get(outpoint)
    }

    /// Iterates the mirrored set in canonical (outpoint) order.
    pub fn iter(&self) -> impl Iterator<Item = (&OutPoint, &TxOut)> {
        self.utxos.iter()
    }

    /// Sum of all mirrored outputs.
    pub fn total_value(&self) -> Amount {
        Amount::checked_sum(self.utxos.values().map(|o| o.amount)).expect("chain-invariant sum")
    }

    /// Sum of regular outputs controlled by `address`.
    pub fn balance_of(&self, address: &Address) -> Amount {
        Amount::checked_sum(
            self.utxos
                .values()
                .filter(|o| !o.is_escrow() && o.address == *address)
                .map(|o| o.amount),
        )
        .expect("chain-invariant sum")
    }

    /// Canonical digest of the persisted state: tip, height and the
    /// full UTXO set in outpoint order. Two stores (or a store and a
    /// live chain, via [`chain_state_digest`]) hold bit-identical
    /// state iff their digests match.
    pub fn state_digest(&self) -> Digest32 {
        let mut buf = Vec::new();
        self.tip.encode_into(&mut buf);
        self.height.encode_into(&mut buf);
        (self.utxos.len() as u64).encode_into(&mut buf);
        for (outpoint, out) in &self.utxos {
            outpoint.encode_into(&mut buf);
            out.encode_into(&mut buf);
        }
        Digest32::hash_tagged("zendoo.store.state", &[&buf])
    }

    /// The journal file's on-disk size in bytes.
    pub fn journal_bytes(&self) -> u64 {
        self.journal.len_bytes()
    }
}

/// The same canonical digest as [`UtxoStore::state_digest`], computed
/// from a live chain — the "in-memory" side of the persisted ==
/// in-memory comparison.
pub fn chain_state_digest(chain: &Blockchain) -> Digest32 {
    let mut entries: Vec<(OutPoint, TxOut)> = chain
        .state()
        .utxos
        .iter()
        .map(|(op, out)| (*op, *out))
        .collect();
    entries.sort_by_key(|(op, _)| *op);
    let mut buf = Vec::new();
    chain.tip_hash().encode_into(&mut buf);
    chain.height().encode_into(&mut buf);
    (entries.len() as u64).encode_into(&mut buf);
    for (outpoint, out) in &entries {
        outpoint.encode_into(&mut buf);
        out.encode_into(&mut buf);
    }
    Digest32::hash_tagged("zendoo.store.state", &[&buf])
}

fn encode_pairs(out: &mut Vec<u8>, pairs: &[(OutPoint, TxOut)]) {
    (pairs.len() as u64).encode_into(out);
    for (outpoint, txout) in pairs {
        outpoint.encode_into(out);
        txout.encode_into(out);
    }
}

fn encode_outpoints(out: &mut Vec<u8>, outpoints: &[OutPoint]) {
    (outpoints.len() as u64).encode_into(out);
    for outpoint in outpoints {
        outpoint.encode_into(out);
    }
}

fn decode_pairs(reader: &mut Reader<'_>) -> Result<Vec<(OutPoint, TxOut)>, CodecError> {
    // Minimum pair size: outpoint (36) + regular txout (41).
    let len = reader.len_prefix(36 + 41)?;
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        let outpoint = reader.outpoint()?;
        let txout = reader.txout()?;
        pairs.push((outpoint, txout));
    }
    Ok(pairs)
}

fn decode_outpoints(reader: &mut Reader<'_>) -> Result<Vec<OutPoint>, CodecError> {
    let len = reader.len_prefix(36)?;
    let mut outpoints = Vec::with_capacity(len);
    for _ in 0..len {
        outpoints.push(reader.outpoint()?);
    }
    Ok(outpoints)
}

fn encode_event(event: &ChainEvent) -> Vec<u8> {
    let mut payload = Vec::new();
    match event {
        ChainEvent::Connected {
            hash,
            height,
            created,
            spent,
        } => {
            TAG_CONNECT.encode_into(&mut payload);
            hash.encode_into(&mut payload);
            height.encode_into(&mut payload);
            encode_pairs(&mut payload, created);
            encode_pairs(&mut payload, spent);
        }
        ChainEvent::Disconnected {
            hash,
            height,
            parent,
            created,
            spent,
        } => {
            TAG_DISCONNECT.encode_into(&mut payload);
            hash.encode_into(&mut payload);
            height.encode_into(&mut payload);
            parent.encode_into(&mut payload);
            encode_outpoints(&mut payload, created);
            encode_pairs(&mut payload, spent);
        }
    }
    payload
}

/// Applies one event to the in-memory mirror with continuity checks,
/// returning the net delta. Shared by live application and journal
/// replay (replay re-decodes into the same [`ChainEvent`] shape).
fn apply_event_to(
    event: &ChainEvent,
    utxos: &mut BTreeMap<OutPoint, TxOut>,
    tip: &mut Digest32,
    height: &mut u64,
    seeded: bool,
) -> Result<AppliedDelta, StoreError> {
    if !seeded {
        return Err(StoreError::Inconsistent(
            "event applied to an unseeded store (bootstrap first)",
        ));
    }
    match event {
        ChainEvent::Connected {
            hash,
            height: event_height,
            created,
            spent,
        } => {
            if *event_height != *height + 1 {
                return Err(StoreError::Discontinuity {
                    expected: format!("connect at height {}", *height + 1),
                    got: format!("connect of {hash} at height {event_height}"),
                });
            }
            let mut delta = AppliedDelta::default();
            for (outpoint, _) in spent {
                let Some(out) = utxos.remove(outpoint) else {
                    return Err(StoreError::Inconsistent("spent output not in store"));
                };
                delta.removed.push((*outpoint, out));
            }
            for (outpoint, out) in created {
                if utxos.insert(*outpoint, *out).is_some() {
                    return Err(StoreError::Inconsistent("created outpoint already present"));
                }
                delta.added.push((*outpoint, *out));
            }
            *tip = *hash;
            *height = *event_height;
            Ok(delta)
        }
        ChainEvent::Disconnected {
            hash,
            height: event_height,
            parent,
            created,
            spent,
        } => {
            if *hash != *tip || *event_height != *height {
                return Err(StoreError::Discontinuity {
                    expected: format!("disconnect of tip {} at height {}", tip, height),
                    got: format!("disconnect of {hash} at height {event_height}"),
                });
            }
            let mut delta = AppliedDelta::default();
            for outpoint in created {
                let Some(out) = utxos.remove(outpoint) else {
                    return Err(StoreError::Inconsistent("rolled-back output not in store"));
                };
                delta.removed.push((*outpoint, out));
            }
            for (outpoint, out) in spent {
                if utxos.insert(*outpoint, *out).is_some() {
                    return Err(StoreError::Inconsistent(
                        "restored outpoint already present",
                    ));
                }
                delta.added.push((*outpoint, *out));
            }
            *tip = *parent;
            *height = event_height - 1;
            Ok(delta)
        }
    }
}

/// Decodes and applies one journal record during replay.
fn replay_record(
    payload: &[u8],
    utxos: &mut BTreeMap<OutPoint, TxOut>,
    tip: &mut Digest32,
    height: &mut u64,
    seeded: &mut bool,
) -> Result<(), StoreError> {
    let mut reader = Reader::new(payload);
    match reader.u8()? {
        TAG_SNAPSHOT => {
            let snap_tip = reader.digest32()?;
            let snap_height = reader.u64()?;
            let pairs = decode_pairs(&mut reader)?;
            reader.finish()?;
            *utxos = pairs.into_iter().collect();
            *tip = snap_tip;
            *height = snap_height;
            *seeded = true;
            Ok(())
        }
        TAG_CONNECT => {
            let hash = reader.digest32()?;
            let event_height = reader.u64()?;
            let created = decode_pairs(&mut reader)?;
            let spent = decode_pairs(&mut reader)?;
            reader.finish()?;
            let event = ChainEvent::Connected {
                hash,
                height: event_height,
                created,
                spent,
            };
            apply_event_to(&event, utxos, tip, height, *seeded).map(|_| ())
        }
        TAG_DISCONNECT => {
            let hash = reader.digest32()?;
            let event_height = reader.u64()?;
            let parent = reader.digest32()?;
            let created = decode_outpoints(&mut reader)?;
            let spent = decode_pairs(&mut reader)?;
            reader.finish()?;
            let event = ChainEvent::Disconnected {
                hash,
                height: event_height,
                parent,
                created,
                spent,
            };
            apply_event_to(&event, utxos, tip, height, *seeded).map(|_| ())
        }
        t => Err(CodecError::BadTag(t).into()),
    }
}
