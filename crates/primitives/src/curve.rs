//! secp256k1 group arithmetic (short Weierstrass `y² = x³ + 7`).
//!
//! Provides affine and Jacobian point types, scalar multiplication, point
//! compression and hash-to-curve (try-and-increment). This is the group
//! underlying Schnorr signatures ([`crate::schnorr`]), the VRF
//! ([`crate::vrf`]) and the simulated SNARK backend.

use crate::field::{Fp, Fr};
use crate::sha256::sha256_tagged;
use rand::Rng;
use std::fmt;
use std::ops::{Add, Mul, Neg};

/// The curve constant `b` in `y² = x³ + b`.
fn curve_b() -> Fp {
    Fp::from_u64(7)
}

/// A point on secp256k1 in affine coordinates, or the point at infinity.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::curve::AffinePoint;
/// use zendoo_primitives::field::Fr;
///
/// let g = AffinePoint::generator();
/// let two_g = (g.to_jacobian() + g.to_jacobian()).to_affine();
/// assert_eq!((g * Fr::from_u64(2)).to_affine(), two_g);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffinePoint {
    x: Fp,
    y: Fp,
    infinity: bool,
}

impl AffinePoint {
    /// The point at infinity (group identity).
    pub fn identity() -> Self {
        AffinePoint {
            x: Fp::ZERO,
            y: Fp::ZERO,
            infinity: true,
        }
    }

    /// The standard secp256k1 base point `G`.
    pub fn generator() -> Self {
        AffinePoint {
            x: Fp::from_hex("79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798"),
            y: Fp::from_hex("483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8"),
            infinity: false,
        }
    }

    /// Constructs a point from affine coordinates, checking the curve
    /// equation.
    pub fn from_xy(x: Fp, y: Fp) -> Option<Self> {
        let p = AffinePoint {
            x,
            y,
            infinity: false,
        };
        p.is_on_curve().then_some(p)
    }

    /// Returns `true` for the identity element.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// The affine x-coordinate.
    ///
    /// # Panics
    ///
    /// Panics if called on the identity.
    pub fn x(&self) -> Fp {
        assert!(!self.infinity, "identity has no affine coordinates");
        self.x
    }

    /// The affine y-coordinate.
    ///
    /// # Panics
    ///
    /// Panics if called on the identity.
    pub fn y(&self) -> Fp {
        assert!(!self.infinity, "identity has no affine coordinates");
        self.y
    }

    /// Checks the curve equation `y² = x³ + 7` (identity is on-curve).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + curve_b()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> JacobianPoint {
        if self.infinity {
            JacobianPoint::identity()
        } else {
            JacobianPoint {
                x: self.x,
                y: self.y,
                z: Fp::one(),
            }
        }
    }

    /// SEC1 compressed encoding: 33 bytes, `0x02`/`0x03` prefix.
    ///
    /// The identity encodes as 33 zero bytes (non-standard but unambiguous:
    /// a valid compressed point never has prefix `0x00`).
    pub fn to_compressed(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        if self.infinity {
            return out;
        }
        out[0] = if self.y.is_odd() { 0x03 } else { 0x02 };
        out[1..].copy_from_slice(&self.x.to_be_bytes());
        out
    }

    /// Decodes a compressed point, recomputing `y` from the curve equation.
    pub fn from_compressed(bytes: &[u8; 33]) -> Option<Self> {
        if bytes == &[0u8; 33] {
            return Some(Self::identity());
        }
        let prefix = bytes[0];
        if prefix != 0x02 && prefix != 0x03 {
            return None;
        }
        let mut x_bytes = [0u8; 32];
        x_bytes.copy_from_slice(&bytes[1..]);
        let x = Fp::from_be_bytes_canonical(&x_bytes)?;
        let y2 = x.square() * x + curve_b();
        let mut y = y2.sqrt()?;
        if y.is_odd() != (prefix == 0x03) {
            y = -y;
        }
        Some(AffinePoint {
            x,
            y,
            infinity: false,
        })
    }

    /// Point negation.
    pub fn negate(&self) -> Self {
        if self.infinity {
            *self
        } else {
            AffinePoint {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }

    /// Deterministically maps arbitrary bytes to a curve point
    /// (try-and-increment over `x = H(domain ‖ msg ‖ ctr)`).
    ///
    /// The expected number of iterations is 2; the loop is bounded only by
    /// the negligible probability of repeated non-residues.
    pub fn hash_to_curve(domain: &str, msg: &[u8]) -> Self {
        for ctr in 0u32.. {
            let digest = sha256_tagged("zendoo/h2c", &[domain.as_bytes(), msg, &ctr.to_be_bytes()]);
            let x = Fp::from_be_bytes_reduced(&digest);
            let y2 = x.square() * x + curve_b();
            if let Some(mut y) = y2.sqrt() {
                // Canonicalize to the even-y representative.
                if y.is_odd() {
                    y = -y;
                }
                return AffinePoint {
                    x,
                    y,
                    infinity: false,
                };
            }
        }
        unreachable!("try-and-increment terminates with overwhelming probability")
    }

    /// Uniformly random point (random scalar times the generator).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (Self::generator() * Fr::random(rng)).to_affine()
    }
}

impl fmt::Debug for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "AffinePoint(infinity)")
        } else {
            write!(f, "AffinePoint({}, {})", self.x, self.y)
        }
    }
}

impl Default for AffinePoint {
    fn default() -> Self {
        Self::identity()
    }
}

impl Mul<Fr> for AffinePoint {
    type Output = JacobianPoint;
    fn mul(self, scalar: Fr) -> JacobianPoint {
        self.to_jacobian() * scalar
    }
}

impl serde::Serialize for AffinePoint {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.to_compressed())
    }
}

impl<'de> serde::Deserialize<'de> for AffinePoint {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let bytes: Vec<u8> = serde::Deserialize::deserialize(deserializer)?;
        let arr: [u8; 33] = bytes
            .try_into()
            .map_err(|_| serde::de::Error::custom("expected 33 bytes"))?;
        AffinePoint::from_compressed(&arr)
            .ok_or_else(|| serde::de::Error::custom("invalid curve point"))
    }
}

/// A point in Jacobian projective coordinates `(X : Y : Z)` with
/// `x = X/Z²`, `y = Y/Z³`. The identity is represented by `Z = 0`.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: Fp,
    y: Fp,
    z: Fp,
}

impl JacobianPoint {
    /// The group identity.
    pub fn identity() -> Self {
        JacobianPoint {
            x: Fp::one(),
            y: Fp::one(),
            z: Fp::ZERO,
        }
    }

    /// The base point in Jacobian form.
    pub fn generator() -> Self {
        AffinePoint::generator().to_jacobian()
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Normalizes to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_identity() {
            return AffinePoint::identity();
        }
        let z_inv = self.z.invert().expect("nonzero z");
        let z_inv2 = z_inv.square();
        AffinePoint {
            x: self.x * z_inv2,
            y: self.y * z_inv2 * z_inv,
            infinity: false,
        }
    }

    /// Point doubling (dbl-2007-a formulas for a = 0).
    pub fn double(&self) -> Self {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity();
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = (self.x + b).square() - a - c;
        d = d.double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let c8 = c.double().double().double();
        let y3 = e * (d - x3) - c8;
        let z3 = (self.y * self.z).double();
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed/general point addition.
    pub fn add_point(&self, other: &JacobianPoint) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * z2z2 * other.z;
        let s2 = other.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication (double-and-add over the canonical scalar
    /// representation).
    pub fn mul_scalar(&self, scalar: &Fr) -> Self {
        let k = scalar.to_u256();
        let mut acc = Self::identity();
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add_point(self);
            }
        }
        acc
    }

    /// Point negation.
    pub fn negate(&self) -> Self {
        JacobianPoint {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }
}

impl Default for JacobianPoint {
    fn default() -> Self {
        Self::identity()
    }
}

impl PartialEq for JacobianPoint {
    fn eq(&self, other: &Self) -> bool {
        // Compare in the projective quotient: X1·Z2² == X2·Z1², Y1·Z2³ == Y2·Z1³.
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}

impl Eq for JacobianPoint {}

impl Add for JacobianPoint {
    type Output = JacobianPoint;
    fn add(self, rhs: JacobianPoint) -> JacobianPoint {
        self.add_point(&rhs)
    }
}

impl Neg for JacobianPoint {
    type Output = JacobianPoint;
    fn neg(self) -> JacobianPoint {
        self.negate()
    }
}

impl Mul<Fr> for JacobianPoint {
    type Output = JacobianPoint;
    fn mul(self, scalar: Fr) -> JacobianPoint {
        self.mul_scalar(&scalar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(AffinePoint::generator().is_on_curve());
    }

    #[test]
    fn known_multiple_2g() {
        // 2G for secp256k1 (public test vector).
        let two_g = (JacobianPoint::generator() * Fr::from_u64(2)).to_affine();
        assert_eq!(
            two_g.x(),
            Fp::from_hex("C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5")
        );
        assert_eq!(
            two_g.y(),
            Fp::from_hex("1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A")
        );
    }

    #[test]
    fn known_multiple_3g() {
        let three_g = (JacobianPoint::generator() * Fr::from_u64(3)).to_affine();
        assert_eq!(
            three_g.x(),
            Fp::from_hex("F9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9")
        );
    }

    #[test]
    fn group_order_annihilates_generator() {
        // n * G = identity, via n = 0 in Fr: multiply by (n - 1) then add G.
        let n_minus_1 = Fr::ZERO - Fr::one();
        let p = JacobianPoint::generator() * n_minus_1 + JacobianPoint::generator();
        assert!(p.is_identity());
    }

    #[test]
    fn addition_laws() {
        let mut r = rng();
        let a = AffinePoint::random(&mut r).to_jacobian();
        let b = AffinePoint::random(&mut r).to_jacobian();
        let c = AffinePoint::random(&mut r).to_jacobian();
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a + JacobianPoint::identity(), a);
        assert!((a + (-a)).is_identity());
        assert_eq!(a + a, a.double());
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut r = rng();
        let s1 = Fr::random(&mut r);
        let s2 = Fr::random(&mut r);
        let g = JacobianPoint::generator();
        assert_eq!(g * s1 + g * s2, g * (s1 + s2));
        assert_eq!((g * s1) * s2, g * (s1 * s2));
    }

    #[test]
    fn compression_roundtrip() {
        let mut r = rng();
        for _ in 0..8 {
            let p = AffinePoint::random(&mut r);
            let decoded = AffinePoint::from_compressed(&p.to_compressed()).unwrap();
            assert_eq!(p, decoded);
        }
        let id = AffinePoint::identity();
        assert_eq!(AffinePoint::from_compressed(&id.to_compressed()), Some(id));
    }

    #[test]
    fn compression_rejects_garbage() {
        let mut bytes = [0xffu8; 33];
        assert!(AffinePoint::from_compressed(&bytes).is_none());
        bytes[0] = 0x02;
        // x = 2^256-1 is not canonical.
        assert!(AffinePoint::from_compressed(&bytes).is_none());
    }

    #[test]
    fn hash_to_curve_is_deterministic_and_valid() {
        let p1 = AffinePoint::hash_to_curve("test", b"hello");
        let p2 = AffinePoint::hash_to_curve("test", b"hello");
        let p3 = AffinePoint::hash_to_curve("test", b"world");
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert!(p1.is_on_curve());
        assert!(p3.is_on_curve());
        assert_ne!(
            AffinePoint::hash_to_curve("other-domain", b"hello"),
            p1,
            "domains must separate"
        );
    }

    #[test]
    fn doubling_edge_cases() {
        assert!(JacobianPoint::identity().double().is_identity());
        let g = JacobianPoint::generator();
        assert_eq!(g.double().double(), g * Fr::from_u64(4));
    }
}
