//! Fixed-depth sparse Merkle tree over Poseidon nodes.
//!
//! This is the data structure behind the Latus **Merkle State Tree**
//! (§5.2, Fig 9): a tree of fixed depth `D` whose `2^D` leaf slots are
//! either *occupied* (holding the hash of an unspent output) or *empty*
//! (the `H(Null)` constant). Empty subtrees hash to precomputed constants,
//! so storage and update cost are proportional to occupancy, not capacity.

use crate::field::Fp;
use crate::merkle::{MerkleHasher, PoseidonHasher};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Errors from sparse-tree operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmtError {
    /// The leaf index is outside `[0, 2^depth)`.
    IndexOutOfRange {
        /// Offending index.
        index: u64,
        /// Tree depth.
        depth: u32,
    },
    /// Attempted to occupy a slot that already holds a leaf.
    SlotOccupied(u64),
    /// Attempted to clear a slot that is already empty.
    SlotEmpty(u64),
}

impl std::fmt::Display for SmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmtError::IndexOutOfRange { index, depth } => {
                write!(f, "leaf index {index} out of range for depth {depth}")
            }
            SmtError::SlotOccupied(i) => write!(f, "slot {i} is already occupied"),
            SmtError::SlotEmpty(i) => write!(f, "slot {i} is already empty"),
        }
    }
}

impl std::error::Error for SmtError {}

/// A sparse Merkle tree of fixed depth with Poseidon node hashing.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::field::Fp;
/// use zendoo_primitives::smt::SparseMerkleTree;
///
/// let mut tree = SparseMerkleTree::new(3);
/// tree.insert(4, Fp::from_u64(77)).unwrap();
/// let proof = tree.proof(4);
/// assert!(proof.verify_occupied(&tree.root(), &Fp::from_u64(77)));
/// assert!(tree.proof(5).verify_empty(&tree.root()));
/// ```
#[derive(Clone, Debug)]
pub struct SparseMerkleTree {
    depth: u32,
    /// Occupied leaves only.
    leaves: BTreeMap<u64, Fp>,
    /// Interior nodes that differ from the empty-subtree constant,
    /// keyed by `(level, index)`; level 1..=depth.
    nodes: HashMap<(u32, u64), Fp>,
    /// `empty[l]` = hash of an empty subtree of height `l`.
    empty: Vec<Fp>,
}

impl SparseMerkleTree {
    /// Maximum supported depth (indices are `u64`).
    pub const MAX_DEPTH: u32 = 63;

    /// Creates an empty tree with `2^depth` slots.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or exceeds [`Self::MAX_DEPTH`].
    pub fn new(depth: u32) -> Self {
        assert!(
            depth >= 1 && depth <= Self::MAX_DEPTH,
            "depth must be in 1..={}",
            Self::MAX_DEPTH
        );
        let mut empty = Vec::with_capacity(depth as usize + 1);
        empty.push(PoseidonHasher::empty());
        for l in 1..=depth as usize {
            let child = empty[l - 1];
            empty.push(PoseidonHasher::combine(&child, &child));
        }
        SparseMerkleTree {
            depth,
            leaves: BTreeMap::new(),
            nodes: HashMap::new(),
            empty,
        }
    }

    /// The tree depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total number of leaf slots, `2^depth`.
    pub fn capacity(&self) -> u64 {
        1u64 << self.depth
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Returns `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The current root.
    pub fn root(&self) -> Fp {
        self.node(self.depth, 0)
    }

    /// The leaf at `index`, if occupied.
    pub fn get(&self, index: u64) -> Option<Fp> {
        self.leaves.get(&index).copied()
    }

    /// Returns `true` if `index` holds a leaf.
    pub fn is_occupied(&self, index: u64) -> bool {
        self.leaves.contains_key(&index)
    }

    /// Iterates over `(index, leaf)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Fp)> + '_ {
        self.leaves.iter().map(|(k, v)| (*k, *v))
    }

    /// Occupies the empty slot at `index` with `leaf`.
    ///
    /// # Errors
    ///
    /// [`SmtError::SlotOccupied`] if the slot already holds a value
    /// (the MST collision case of §5.3.2), or
    /// [`SmtError::IndexOutOfRange`] for indices beyond capacity.
    pub fn insert(&mut self, index: u64, leaf: Fp) -> Result<(), SmtError> {
        self.check_range(index)?;
        if self.leaves.contains_key(&index) {
            return Err(SmtError::SlotOccupied(index));
        }
        self.leaves.insert(index, leaf);
        self.update_path(index);
        Ok(())
    }

    /// Clears the occupied slot at `index`, returning the removed leaf.
    ///
    /// # Errors
    ///
    /// [`SmtError::SlotEmpty`] if the slot holds no value.
    pub fn remove(&mut self, index: u64) -> Result<Fp, SmtError> {
        self.check_range(index)?;
        let removed = self
            .leaves
            .remove(&index)
            .ok_or(SmtError::SlotEmpty(index))?;
        self.update_path(index);
        Ok(removed)
    }

    /// Produces a (membership or absence) proof for slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; use [`SparseMerkleTree::capacity`]
    /// to validate first when handling untrusted input.
    pub fn proof(&self, index: u64) -> SmtProof {
        assert!(
            index < self.capacity(),
            "index {index} out of range for depth {}",
            self.depth
        );
        let mut siblings = Vec::with_capacity(self.depth as usize);
        for level in 0..self.depth {
            let sibling_index = (index >> level) ^ 1;
            siblings.push(self.node(level, sibling_index));
        }
        SmtProof {
            index,
            siblings,
            empty_leaf: self.empty[0],
        }
    }

    fn check_range(&self, index: u64) -> Result<(), SmtError> {
        if index >= self.capacity() {
            Err(SmtError::IndexOutOfRange {
                index,
                depth: self.depth,
            })
        } else {
            Ok(())
        }
    }

    /// Value of the node at `(level, index)`; level 0 = leaves.
    fn node(&self, level: u32, index: u64) -> Fp {
        if level == 0 {
            self.leaves.get(&index).copied().unwrap_or(self.empty[0])
        } else {
            self.nodes
                .get(&(level, index))
                .copied()
                .unwrap_or(self.empty[level as usize])
        }
    }

    /// Recomputes interior nodes along the path from leaf `index` to root.
    fn update_path(&mut self, index: u64) {
        for level in 1..=self.depth {
            let node_index = index >> level;
            let left = self.node(level - 1, node_index * 2);
            let right = self.node(level - 1, node_index * 2 + 1);
            let value = PoseidonHasher::combine(&left, &right);
            if value == self.empty[level as usize] {
                self.nodes.remove(&(level, node_index));
            } else {
                self.nodes.insert((level, node_index), value);
            }
        }
    }
}

/// A proof for one slot of a [`SparseMerkleTree`]: proves either the
/// membership of a specific leaf or the emptiness of the slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtProof {
    index: u64,
    siblings: Vec<Fp>,
    empty_leaf: Fp,
}

impl SmtProof {
    /// The slot index the proof speaks about.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The sibling path (leaf level first).
    pub fn siblings(&self) -> &[Fp] {
        &self.siblings
    }

    /// Verifies that slot `index` holds exactly `leaf` under `root`.
    pub fn verify_occupied(&self, root: &Fp, leaf: &Fp) -> bool {
        self.compute_root(leaf) == *root
    }

    /// Verifies that slot `index` is empty under `root`.
    pub fn verify_empty(&self, root: &Fp) -> bool {
        let empty = self.empty_leaf;
        self.compute_root(&empty) == *root
    }

    /// Root implied by placing `leaf` at the proof's slot.
    pub fn compute_root(&self, leaf: &Fp) -> Fp {
        let mut acc = *leaf;
        for (level, sibling) in self.siblings.iter().enumerate() {
            let bit = (self.index >> level) & 1;
            acc = if bit == 0 {
                PoseidonHasher::combine(&acc, sibling)
            } else {
                PoseidonHasher::combine(sibling, &acc)
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_roots_are_depth_dependent() {
        let t3 = SparseMerkleTree::new(3);
        let t4 = SparseMerkleTree::new(4);
        assert_ne!(t3.root(), t4.root());
        assert_eq!(SparseMerkleTree::new(3).root(), t3.root());
    }

    #[test]
    fn insert_changes_root_and_remove_restores_it() {
        let mut tree = SparseMerkleTree::new(4);
        let empty_root = tree.root();
        tree.insert(5, Fp::from_u64(42)).unwrap();
        assert_ne!(tree.root(), empty_root);
        assert_eq!(tree.remove(5).unwrap(), Fp::from_u64(42));
        assert_eq!(tree.root(), empty_root);
        assert!(tree.nodes.is_empty(), "node cache must shrink back");
    }

    #[test]
    fn double_insert_rejected() {
        let mut tree = SparseMerkleTree::new(4);
        tree.insert(3, Fp::from_u64(1)).unwrap();
        assert_eq!(
            tree.insert(3, Fp::from_u64(2)),
            Err(SmtError::SlotOccupied(3))
        );
    }

    #[test]
    fn remove_empty_rejected() {
        let mut tree = SparseMerkleTree::new(4);
        assert_eq!(tree.remove(3), Err(SmtError::SlotEmpty(3)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut tree = SparseMerkleTree::new(3);
        assert!(matches!(
            tree.insert(8, Fp::ZERO),
            Err(SmtError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn membership_and_absence_proofs() {
        let mut tree = SparseMerkleTree::new(5);
        tree.insert(7, Fp::from_u64(700)).unwrap();
        tree.insert(19, Fp::from_u64(1900)).unwrap();
        let root = tree.root();

        let p7 = tree.proof(7);
        assert!(p7.verify_occupied(&root, &Fp::from_u64(700)));
        assert!(!p7.verify_occupied(&root, &Fp::from_u64(701)));
        assert!(!p7.verify_empty(&root));

        let p8 = tree.proof(8);
        assert!(p8.verify_empty(&root));
        assert!(!p8.verify_occupied(&root, &Fp::from_u64(700)));
    }

    #[test]
    fn proof_invalidated_by_updates() {
        let mut tree = SparseMerkleTree::new(4);
        tree.insert(2, Fp::from_u64(5)).unwrap();
        let stale = tree.proof(2);
        let old_root = tree.root();
        tree.insert(9, Fp::from_u64(6)).unwrap();
        assert!(!stale.verify_occupied(&tree.root(), &Fp::from_u64(5)));
        assert!(stale.verify_occupied(&old_root, &Fp::from_u64(5)));
    }

    #[test]
    fn matches_paper_figure9_occupancy() {
        // Fig 9: depth 3, slots 0/4/6 occupied (1-indexed in the figure as
        // utxo1..3 at leaves 1, 5, 7 of 8 — we use 0-based 0, 4, 6).
        let mut tree = SparseMerkleTree::new(3);
        tree.insert(0, Fp::from_u64(1)).unwrap();
        tree.insert(4, Fp::from_u64(2)).unwrap();
        tree.insert(6, Fp::from_u64(3)).unwrap();
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.capacity(), 8);
        for i in [1u64, 2, 3, 5, 7] {
            assert!(tree.proof(i).verify_empty(&tree.root()));
        }
    }

    #[test]
    fn order_independence_of_root() {
        let mut a = SparseMerkleTree::new(6);
        let mut b = SparseMerkleTree::new(6);
        let entries = [(1u64, 10u64), (33, 20), (7, 30), (62, 40)];
        for (i, v) in entries {
            a.insert(i, Fp::from_u64(v)).unwrap();
        }
        for (i, v) in entries.iter().rev() {
            b.insert(*i, Fp::from_u64(*v)).unwrap();
        }
        assert_eq!(a.root(), b.root());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_insert_remove_root_consistency(
            ops in proptest::collection::vec((0u64..64, 1u64..1_000_000), 1..40)
        ) {
            let mut tree = SparseMerkleTree::new(6);
            let mut reference = std::collections::BTreeMap::new();
            for (idx, val) in ops {
                if reference.contains_key(&idx) {
                    tree.remove(idx).unwrap();
                    reference.remove(&idx);
                } else {
                    tree.insert(idx, Fp::from_u64(val)).unwrap();
                    reference.insert(idx, val);
                }
            }
            // Rebuild from scratch and compare roots.
            let mut fresh = SparseMerkleTree::new(6);
            for (idx, val) in &reference {
                fresh.insert(*idx, Fp::from_u64(*val)).unwrap();
            }
            prop_assert_eq!(tree.root(), fresh.root());
            prop_assert_eq!(tree.len(), reference.len());
            // All membership proofs verify.
            for (idx, val) in &reference {
                prop_assert!(tree.proof(*idx).verify_occupied(&tree.root(), &Fp::from_u64(*val)));
            }
        }
    }
}
