//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is the little-endian 4×u64 limb representation underlying the
//! prime-field types in [`crate::field`]. Only the operations required by
//! Montgomery arithmetic, curve decompression and canonical byte encoding
//! are provided; there is intentionally no general division.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::bigint::U256;
///
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(5);
/// let (sum, carry) = a.overflowing_add(&b);
/// assert_eq!(sum, U256::from_u64(12));
/// assert!(!carry);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The additive identity.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a `U256` from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a `U256` from four little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Returns `true` if the value is zero.
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns `true` if the lowest bit is set.
    pub const fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Parses a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - 8 * (i + 1);
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[start..start + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serializes to a big-endian 32-byte array.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            let start = 32 - 8 * (i + 1);
            out[start..start + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian hexadecimal string of up to 64 nibbles.
    ///
    /// # Panics
    ///
    /// Panics if the string is longer than 64 characters or contains
    /// non-hexadecimal characters. Intended for compile-time-style constants
    /// in tests and parameter tables.
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim_start_matches("0x");
        assert!(s.len() <= 64, "hex literal longer than 256 bits");
        let mut bytes = [0u8; 32];
        let padded = format!("{s:0>64}");
        for i in 0..32 {
            bytes[i] = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16)
                .expect("invalid hex digit in U256 literal");
        }
        Self::from_be_bytes(&bytes)
    }

    /// Addition returning `(result, carry)`.
    pub const fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
            i += 1;
        }
        (U256(out), carry != 0)
    }

    /// Subtraction returning `(result, borrow)`.
    pub const fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < 4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
            i += 1;
        }
        (U256(out), borrow != 0)
    }

    /// Wrapping addition modulo `2^256`.
    pub const fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction modulo `2^256`.
    pub const fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Two's-complement negation modulo `2^256` (`2^256 - self` for nonzero).
    pub const fn wrapping_neg(&self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    /// Full 256×256→512-bit schoolbook multiplication.
    ///
    /// Returns `(lo, hi)` halves of the product.
    pub const fn widening_mul(&self, rhs: &U256) -> (U256, U256) {
        let mut t = [0u64; 8];
        let mut i = 0;
        while i < 4 {
            let mut carry = 0u128;
            let mut j = 0;
            while j < 4 {
                let acc = t[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                t[i + j] = acc as u64;
                carry = acc >> 64;
                j += 1;
            }
            t[i + 4] = carry as u64;
            i += 1;
        }
        (
            U256([t[0], t[1], t[2], t[3]]),
            U256([t[4], t[5], t[6], t[7]]),
        )
    }

    /// Shifts left by one bit, returning the shifted-out top bit as `bool`.
    pub const fn shl1(&self) -> (U256, bool) {
        let top = self.0[3] >> 63 == 1;
        let mut out = [0u64; 4];
        out[0] = self.0[0] << 1;
        out[1] = (self.0[1] << 1) | (self.0[0] >> 63);
        out[2] = (self.0[2] << 1) | (self.0[1] >> 63);
        out[3] = (self.0[3] << 1) | (self.0[2] >> 63);
        (U256(out), top)
    }

    /// Shifts right by one bit.
    pub const fn shr1(&self) -> U256 {
        let mut out = [0u64; 4];
        out[3] = self.0[3] >> 1;
        out[2] = (self.0[2] >> 1) | (self.0[3] << 63);
        out[1] = (self.0[1] >> 1) | (self.0[2] << 63);
        out[0] = (self.0[0] >> 1) | (self.0[1] << 63);
        U256(out)
    }

    /// Returns bit `i` (0 = least significant).
    pub const fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub const fn bits(&self) -> usize {
        let mut i = 3;
        loop {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// Constant-capable comparison: returns `-1`, `0` or `1`.
    pub const fn const_cmp(&self, rhs: &U256) -> i8 {
        let mut i = 3;
        loop {
            if self.0[i] < rhs.0[i] {
                return -1;
            }
            if self.0[i] > rhs.0[i] {
                return 1;
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// Reduces `self` modulo `m`, assuming `self < 2 * m`.
    ///
    /// This is the only modular reduction required outside Montgomery form,
    /// because all moduli used in this workspace exceed `2^255` so any
    /// 256-bit value is below `2m`.
    pub const fn reduce_once(&self, m: &U256) -> U256 {
        if self.const_cmp(m) >= 0 {
            self.wrapping_sub(m)
        } else {
            *self
        }
    }

    /// Addition modulo `m`, assuming both operands are already `< m`.
    pub const fn add_mod(&self, rhs: &U256, m: &U256) -> U256 {
        let (sum, carry) = self.overflowing_add(rhs);
        // If the 256-bit addition overflowed, the true value is sum + 2^256,
        // which is >= m (since m < 2^256); subtracting m once restores range
        // because sum + 2^256 < 2m when both inputs are < m.
        if carry {
            sum.wrapping_sub(m)
        } else {
            sum.reduce_once(m)
        }
    }

    /// Subtraction modulo `m`, assuming both operands are already `< m`.
    pub const fn sub_mod(&self, rhs: &U256, m: &U256) -> U256 {
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(m)
        } else {
            diff
        }
    }

    /// Doubling modulo `m`, assuming `self < m`.
    pub const fn double_mod(&self, m: &U256) -> U256 {
        self.add_mod(self, m)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.const_cmp(other) {
            -1 => Ordering::Less,
            0 => Ordering::Equal,
            _ => Ordering::Greater,
        }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00");
        let b = U256::from_u64(0x1234);
        let (sum, carry) = a.overflowing_add(&b);
        assert!(carry);
        let (back, borrow) = sum.overflowing_sub(&b);
        assert!(borrow);
        assert_eq!(back, a);
    }

    #[test]
    fn widening_mul_small() {
        let a = U256::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(lo, U256([1, u64::MAX - 1, 0, 0]));
        assert!(hi.is_zero());
    }

    #[test]
    fn widening_mul_max() {
        let (lo, hi) = U256::MAX.widening_mul(&U256::MAX);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256([u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX]));
    }

    #[test]
    fn byte_roundtrip() {
        let a = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
        assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn comparison_and_bits() {
        let a = U256::from_u64(5);
        let b = U256::from_hex("100000000000000000");
        assert!(a < b);
        assert_eq!(b.bits(), 69);
        assert!(b.bit(68));
        assert!(!b.bit(67));
    }

    #[test]
    fn shifts() {
        let a = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001");
        let (shifted, top) = a.shl1();
        assert!(top);
        assert_eq!(shifted, U256::from_u64(2));
        assert_eq!(a.shr1().0[3], 0x4000000000000000);
    }

    #[test]
    fn add_mod_wraps_correctly() {
        let m = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        let a = m.wrapping_sub(&U256::ONE);
        assert_eq!(a.add_mod(&U256::ONE, &m), U256::ZERO);
        assert_eq!(a.add_mod(&a, &m), m.wrapping_sub(&U256::from_u64(2)));
        assert_eq!(U256::ZERO.sub_mod(&U256::ONE, &m), a);
    }

    #[test]
    fn display_formats() {
        let a = U256::from_u64(0xdead);
        assert!(format!("{a}").ends_with("dead"));
        assert!(format!("{a:x}").ends_with("dead"));
        assert!(!format!("{a:?}").is_empty());
    }
}
