//! Prime-field arithmetic in Montgomery form.
//!
//! [`Fp256`] is a generic 256-bit prime field parameterized by a
//! [`FieldParams`] marker type. Two instantiations are provided:
//!
//! * [`Fp`] — the secp256k1 base field (coordinates, Poseidon state),
//! * [`Fr`] — the secp256k1 scalar field (Schnorr/VRF scalars).
//!
//! All arithmetic uses CIOS Montgomery multiplication with `R = 2^256`; the
//! Montgomery constants are derived at compile time from the modulus alone,
//! so adding another field is a one-struct affair.

use crate::bigint::U256;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Compile-time parameters of a 256-bit prime field.
///
/// Implementors only supply the modulus; `R^2 mod N` and `-N^{-1} mod 2^64`
/// are derived by const evaluation.
pub trait FieldParams: Copy + Clone + Eq + PartialEq + std::hash::Hash + 'static {
    /// The field modulus `N` (must be odd and exceed `2^255`).
    const MODULUS: U256;
    /// Short human-readable name used in `Debug` output.
    const NAME: &'static str;

    /// `R^2 mod N` where `R = 2^256`; used to enter Montgomery form.
    const R2: U256 = compute_r2(Self::MODULUS);
    /// `-N^{-1} mod 2^64`; the CIOS folding constant.
    const INV: u64 = compute_inv(Self::MODULUS);
    /// `(N + 1) / 4`, valid as a square-root exponent when `N ≡ 3 (mod 4)`.
    const SQRT_EXP: U256 = compute_sqrt_exp(Self::MODULUS);
    /// `N - 2`, the Fermat inversion exponent.
    const INV_EXP: U256 = Self::MODULUS.wrapping_sub(&U256::from_u64(2));
}

/// Derives `R^2 mod N` by 256 modular doublings of `R mod N`.
const fn compute_r2(modulus: U256) -> U256 {
    // R mod N = 2^256 - N  (valid because 2^255 < N < 2^256).
    let mut x = modulus.wrapping_neg();
    let mut i = 0;
    while i < 256 {
        x = x.double_mod(&modulus);
        i += 1;
    }
    x
}

/// Derives `-N^{-1} mod 2^64` by Newton iteration.
const fn compute_inv(modulus: U256) -> u64 {
    let n0 = modulus.0[0];
    let mut inv = 1u64;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Derives `(N + 1) / 4` (exact when `N ≡ 3 (mod 4)`).
const fn compute_sqrt_exp(modulus: U256) -> U256 {
    modulus.wrapping_add(&U256::ONE).shr1().shr1()
}

/// An element of the prime field defined by `P`, stored in Montgomery form.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::field::Fp;
///
/// let a = Fp::from_u64(3);
/// let b = Fp::from_u64(4);
/// assert_eq!((a + b) * a.invert().unwrap() * a, a + b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp256<P: FieldParams> {
    mont: U256,
    _marker: PhantomData<P>,
}

impl<P: FieldParams> Fp256<P> {
    /// The additive identity.
    pub const ZERO: Self = Fp256 {
        mont: U256::ZERO,
        _marker: PhantomData,
    };

    /// Constructs from a canonical (non-Montgomery) integer `< N`.
    ///
    /// Values `>= N` are reduced once (callers feeding arbitrary 256-bit
    /// data should prefer [`Fp256::from_be_bytes_reduced`]).
    pub fn from_u256(v: U256) -> Self {
        let reduced = v.reduce_once(&P::MODULUS);
        Self::from_raw(mont_mul::<P>(&reduced, &P::R2))
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_u256(U256::from_u64(v))
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Interprets 32 big-endian bytes as an integer and reduces modulo `N`.
    ///
    /// Because `N > 2^255`, the bias introduced by the single conditional
    /// subtraction is at most one part in `2^255`.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        Self::from_u256(U256::from_be_bytes(bytes).reduce_once(&P::MODULUS))
    }

    /// Parses 32 big-endian bytes, rejecting non-canonical values `>= N`.
    pub fn from_be_bytes_canonical(bytes: &[u8; 32]) -> Option<Self> {
        let v = U256::from_be_bytes(bytes);
        if v.const_cmp(&P::MODULUS) >= 0 {
            None
        } else {
            Some(Self::from_u256(v))
        }
    }

    /// Parses a big-endian hexadecimal literal (see [`U256::from_hex`]).
    pub fn from_hex(s: &str) -> Self {
        Self::from_u256(U256::from_hex(s))
    }

    /// Wraps a value that is already in Montgomery form.
    const fn from_raw(mont: U256) -> Self {
        Fp256 {
            mont,
            _marker: PhantomData,
        }
    }

    /// Returns the canonical integer representative in `[0, N)`.
    pub fn to_u256(&self) -> U256 {
        mont_mul::<P>(&self.mont, &U256::ONE)
    }

    /// Canonical 32-byte big-endian encoding.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.to_u256().to_be_bytes()
    }

    /// Returns `true` for the zero element.
    pub fn is_zero(&self) -> bool {
        self.mont.is_zero()
    }

    /// Returns `true` if the canonical representative is odd.
    pub fn is_odd(&self) -> bool {
        self.to_u256().is_odd()
    }

    /// Field addition.
    pub fn add_ref(&self, rhs: &Self) -> Self {
        Self::from_raw(self.mont.add_mod(&rhs.mont, &P::MODULUS))
    }

    /// Field subtraction.
    pub fn sub_ref(&self, rhs: &Self) -> Self {
        Self::from_raw(self.mont.sub_mod(&rhs.mont, &P::MODULUS))
    }

    /// Field negation.
    pub fn neg_ref(&self) -> Self {
        Self::from_raw(U256::ZERO.sub_mod(&self.mont, &P::MODULUS))
    }

    /// Field multiplication.
    pub fn mul_ref(&self, rhs: &Self) -> Self {
        Self::from_raw(mont_mul::<P>(&self.mont, &rhs.mont))
    }

    /// Squaring.
    pub fn square(&self) -> Self {
        self.mul_ref(self)
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        self.add_ref(self)
    }

    /// Exponentiation by a 256-bit exponent (square-and-multiply).
    pub fn pow(&self, exp: &U256) -> Self {
        let mut acc = Self::one();
        let bits = exp.bits();
        for i in (0..bits).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = acc.mul_ref(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(&P::INV_EXP))
        }
    }

    /// Square root for fields with `N ≡ 3 (mod 4)`.
    ///
    /// Returns `None` if the element is a quadratic non-residue.
    pub fn sqrt(&self) -> Option<Self> {
        debug_assert_eq!(
            P::MODULUS.0[0] & 3,
            3,
            "sqrt exponent shortcut requires N ≡ 3 (mod 4)"
        );
        let candidate = self.pow(&P::SQRT_EXP);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Uniformly random nonzero-or-zero field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling keeps the distribution exactly uniform.
        loop {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            let v = U256::from_be_bytes(&bytes);
            if v.const_cmp(&P::MODULUS) < 0 {
                return Self::from_u256(v);
            }
        }
    }
}

/// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod N`.
fn mont_mul<P: FieldParams>(a: &U256, b: &U256) -> U256 {
    let n = P::MODULUS.0;
    let mut t = [0u64; 6];
    for i in 0..4 {
        // t += a[i] * b
        let mut carry = 0u128;
        for j in 0..4 {
            let acc = t[j] as u128 + (a.0[i] as u128) * (b.0[j] as u128) + carry;
            t[j] = acc as u64;
            carry = acc >> 64;
        }
        let acc = t[4] as u128 + carry;
        t[4] = acc as u64;
        t[5] = (acc >> 64) as u64;

        // m = t[0] * (-N^-1) mod 2^64 ; t += m * N ; t >>= 64
        let m = t[0].wrapping_mul(P::INV);
        let mut carry = {
            let acc = t[0] as u128 + (m as u128) * (n[0] as u128);
            acc >> 64
        };
        for j in 1..4 {
            let acc = t[j] as u128 + (m as u128) * (n[j] as u128) + carry;
            t[j - 1] = acc as u64;
            carry = acc >> 64;
        }
        let acc = t[4] as u128 + carry;
        t[3] = acc as u64;
        t[4] = t[5] + ((acc >> 64) as u64);
        t[5] = 0;
    }
    let r = U256([t[0], t[1], t[2], t[3]]);
    if t[4] != 0 {
        // The true value is r + 2^256 >= N; one subtraction restores range.
        r.wrapping_sub(&P::MODULUS)
    } else {
        r.reduce_once(&P::MODULUS)
    }
}

impl<P: FieldParams> fmt::Debug for Fp256<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(0x{:x})", P::NAME, self.to_u256())
    }
}

impl<P: FieldParams> fmt::Display for Fp256<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.to_u256())
    }
}

impl<P: FieldParams> Default for Fp256<P> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FieldParams> Add for Fp256<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.add_ref(&rhs)
    }
}

impl<P: FieldParams> Sub for Fp256<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.sub_ref(&rhs)
    }
}

impl<P: FieldParams> Mul for Fp256<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.mul_ref(&rhs)
    }
}

impl<P: FieldParams> Neg for Fp256<P> {
    type Output = Self;
    fn neg(self) -> Self {
        self.neg_ref()
    }
}

impl<P: FieldParams> AddAssign for Fp256<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = self.add_ref(&rhs);
    }
}

impl<P: FieldParams> SubAssign for Fp256<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.sub_ref(&rhs);
    }
}

impl<P: FieldParams> MulAssign for Fp256<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = self.mul_ref(&rhs);
    }
}

impl<P: FieldParams> From<u64> for Fp256<P> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl<P: FieldParams> serde::Serialize for Fp256<P> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.to_be_bytes())
    }
}

impl<'de, P: FieldParams> serde::Deserialize<'de> for Fp256<P> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let bytes: Vec<u8> = serde::Deserialize::deserialize(deserializer)?;
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| serde::de::Error::custom("expected 32 bytes"))?;
        Fp256::from_be_bytes_canonical(&arr)
            .ok_or_else(|| serde::de::Error::custom("non-canonical field element"))
    }
}

/// Marker for the secp256k1 base field (`p = 2^256 - 2^32 - 977`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SecpBase;

impl FieldParams for SecpBase {
    const MODULUS: U256 = U256([
        0xFFFF_FFFE_FFFF_FC2F,
        0xFFFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_FFFF_FFFF,
    ]);
    const NAME: &'static str = "Fp";
}

/// Marker for the secp256k1 scalar field (the order of the group).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SecpScalar;

impl FieldParams for SecpScalar {
    const MODULUS: U256 = U256([
        0xBFD2_5E8C_D036_4141,
        0xBAAE_DCE6_AF48_A03B,
        0xFFFF_FFFF_FFFF_FFFE,
        0xFFFF_FFFF_FFFF_FFFF,
    ]);
    const NAME: &'static str = "Fr";
}

/// The secp256k1 base field.
pub type Fp = Fp256<SecpBase>;
/// The secp256k1 scalar field.
pub type Fr = Fp256<SecpScalar>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn montgomery_constants_are_consistent() {
        // INV * N ≡ -1 (mod 2^64)
        assert_eq!(SecpBase::INV.wrapping_mul(SecpBase::MODULUS.0[0]), u64::MAX);
        assert_eq!(
            SecpScalar::INV.wrapping_mul(SecpScalar::MODULUS.0[0]),
            u64::MAX
        );
        // One round-trips through Montgomery form.
        assert_eq!(Fp::one().to_u256(), U256::ONE);
        assert_eq!(Fr::one().to_u256(), U256::ONE);
    }

    #[test]
    fn basic_arithmetic() {
        let a = Fp::from_u64(1_000_000_007);
        let b = Fp::from_u64(998_244_353);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * Fp::one(), a);
        assert_eq!(a * Fp::ZERO, Fp::ZERO);
        assert_eq!(a + a.neg_ref(), Fp::ZERO);
        assert_eq!(Fp::from_u64(6) * Fp::from_u64(7), Fp::from_u64(42));
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..32 {
            let a = Fp::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), Fp::one());
        }
        assert!(Fp::ZERO.invert().is_none());
        let s = Fr::random(&mut r);
        assert_eq!(s * s.invert().unwrap(), Fr::one());
    }

    #[test]
    fn sqrt_of_squares() {
        let mut r = rng();
        for _ in 0..16 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg_ref());
        }
    }

    #[test]
    fn nonresidue_has_no_sqrt() {
        // Count roots over random elements: roughly half must fail.
        let mut r = rng();
        let mut failures = 0;
        for _ in 0..64 {
            if Fp::random(&mut r).sqrt().is_none() {
                failures += 1;
            }
        }
        assert!(failures > 10, "expected some quadratic non-residues");
    }

    #[test]
    fn wraparound_at_modulus() {
        let p_minus_1 = Fp::from_u256(SecpBase::MODULUS.wrapping_sub(&U256::ONE));
        assert_eq!(p_minus_1 + Fp::one(), Fp::ZERO);
        assert_eq!(p_minus_1 * p_minus_1, Fp::one()); // (-1)^2 = 1
    }

    #[test]
    fn canonical_byte_parsing() {
        let bytes = SecpBase::MODULUS.to_be_bytes();
        assert!(Fp::from_be_bytes_canonical(&bytes).is_none());
        let reduced = Fp::from_be_bytes_reduced(&bytes);
        assert!(reduced.is_zero());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fp::from_u64(3);
        let mut expected = Fp::one();
        for _ in 0..77 {
            expected *= a;
        }
        assert_eq!(a.pow(&U256::from_u64(77)), expected);
    }

    proptest! {
        #[test]
        fn prop_field_ring_axioms(x in any::<u64>(), y in any::<u64>(), z in any::<u64>()) {
            let (a, b, c) = (Fp::from_u64(x), Fp::from_u64(y), Fp::from_u64(z));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_u64_embedding_is_homomorphic(x in any::<u32>(), y in any::<u32>()) {
            let (x, y) = (x as u64, y as u64);
            prop_assert_eq!(Fp::from_u64(x) + Fp::from_u64(y), Fp::from_u64(x + y));
            prop_assert_eq!(Fp::from_u64(x) * Fp::from_u64(y), Fp::from_u64(x * y));
            prop_assert_eq!(Fr::from_u64(x) * Fr::from_u64(y), Fr::from_u64(x * y));
        }

        #[test]
        fn prop_bytes_roundtrip(x in any::<[u8; 32]>()) {
            let a = Fp::from_be_bytes_reduced(&x);
            let b = Fp::from_be_bytes_canonical(&a.to_be_bytes()).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
