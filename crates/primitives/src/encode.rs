//! Canonical deterministic binary encoding.
//!
//! Every on-chain object is hashed through this encoding, so it must be
//! injective per type: integers are fixed-width big-endian, sequences are
//! length-prefixed, options carry a presence byte. [`digest`] combines the
//! encoding with a tagged SHA-256 to derive ids and commitment leaves.

use crate::curve::AffinePoint;
use crate::digest::Digest32;
use crate::field::{FieldParams, Fp256};

/// Types with a canonical binary encoding.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::encode::Encode;
///
/// let v: Vec<u64> = vec![1, 2, 3];
/// assert_eq!(v.encoded().len(), 8 + 3 * 8);
/// ```
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Returns the canonical encoding as a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Computes the tagged digest of a value's canonical encoding.
pub fn digest<T: Encode + ?Sized>(tag: &str, value: &T) -> Digest32 {
    Digest32::hash_tagged(tag, &[&value.encoded()])
}

impl Encode for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Encode for u16 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Encode for [u8; 32] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl Encode for [u8; 33] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl Encode for [u8; 65] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl Encode for str {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_str().encode_into(out);
    }
}

impl Encode for Digest32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
}

impl<P: FieldParams> Encode for Fp256<P> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl Encode for AffinePoint {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_compressed());
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_into(out);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self).encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Fp;

    #[test]
    fn integers_are_big_endian_fixed_width() {
        assert_eq!(1u64.encoded(), vec![0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(0x0102u16.encoded(), vec![1, 2]);
        assert_eq!(true.encoded(), vec![1]);
    }

    #[test]
    fn sequences_are_length_prefixed() {
        let v: Vec<u8> = vec![9, 9];
        assert_eq!(v.encoded(), vec![0, 0, 0, 0, 0, 0, 0, 2, 9, 9]);
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.encoded().len(), 8);
    }

    #[test]
    fn options_carry_presence() {
        assert_eq!(Option::<u8>::None.encoded(), vec![0]);
        assert_eq!(Some(5u8).encoded(), vec![1, 5]);
    }

    #[test]
    fn digest_depends_on_tag_and_value() {
        let a = digest("t1", &42u64);
        let b = digest("t2", &42u64);
        let c = digest("t1", &43u64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, digest("t1", &42u64));
    }

    #[test]
    fn nested_structures_are_unambiguous() {
        // ([1], [2,3]) vs ([1,2], [3]) must encode differently.
        let a = (vec![1u8], vec![2u8, 3u8]).encoded();
        let b = (vec![1u8, 2u8], vec![3u8]).encoded();
        assert_ne!(a, b);
    }

    #[test]
    fn field_elements_encode_canonically() {
        let x = Fp::from_u64(0xdead);
        assert_eq!(x.encoded(), x.to_be_bytes().to_vec());
    }
}
