//! Poseidon: the SNARK-friendly algebraic hash over the base field.
//!
//! The paper's state-transition proofs require "an efficient hashing
//! procedure … implemented for a SNARK arithmetic constraint system"
//! (§5.4). Poseidon is the hash the production Zendoo stack uses; this is
//! a from-scratch instantiation over the secp256k1 base field with
//! `t = 3`, `x⁵` S-box (a permutation because `gcd(5, p-1) = 1` for this
//! `p`), 8 full + 57 partial rounds, a Cauchy MDS matrix, and round
//! constants derived from a SHA-256 counter PRG.
//!
//! Provides the 2-to-1 compression used by Merkle trees ([`hash2`]) and a
//! variable-length sponge ([`hash_many`]).

use crate::field::Fp;
use crate::sha256::Prg;
use std::sync::OnceLock;

/// State width.
pub const T: usize = 3;
/// Number of full rounds (split half before, half after partial rounds).
pub const FULL_ROUNDS: usize = 8;
/// Number of partial rounds.
pub const PARTIAL_ROUNDS: usize = 57;

struct Params {
    round_constants: Vec<[Fp; T]>,
    mds: [[Fp; T]; T],
}

fn params() -> &'static Params {
    static PARAMS: OnceLock<Params> = OnceLock::new();
    PARAMS.get_or_init(|| {
        let mut prg = Prg::new("zendoo/poseidon-v1/round-constants");
        let rounds = FULL_ROUNDS + PARTIAL_ROUNDS;
        let mut round_constants = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut rc = [Fp::ZERO; T];
            for c in rc.iter_mut() {
                *c = Fp::from_be_bytes_reduced(&prg.next_bytes32());
            }
            round_constants.push(rc);
        }
        // Cauchy MDS: m[i][j] = 1 / (x_i + y_j) with distinct x, y rows.
        let xs = [Fp::from_u64(1), Fp::from_u64(2), Fp::from_u64(3)];
        let ys = [Fp::from_u64(4), Fp::from_u64(5), Fp::from_u64(6)];
        let mut mds = [[Fp::ZERO; T]; T];
        for (i, x) in xs.iter().enumerate() {
            for (j, y) in ys.iter().enumerate() {
                mds[i][j] = (*x + *y).invert().expect("x_i + y_j nonzero");
            }
        }
        Params {
            round_constants,
            mds,
        }
    })
}

#[inline]
fn sbox(x: Fp) -> Fp {
    // x^5
    let x2 = x.square();
    x2.square() * x
}

fn apply_mds(state: &mut [Fp; T], mds: &[[Fp; T]; T]) {
    let mut out = [Fp::ZERO; T];
    for (i, row) in mds.iter().enumerate() {
        let mut acc = Fp::ZERO;
        for (j, m) in row.iter().enumerate() {
            acc += *m * state[j];
        }
        out[i] = acc;
    }
    *state = out;
}

/// The Poseidon permutation over a width-3 state.
pub fn permute(state: &mut [Fp; T]) {
    let p = params();
    let half_full = FULL_ROUNDS / 2;
    let mut round = 0;
    for _ in 0..half_full {
        for (s, rc) in state.iter_mut().zip(&p.round_constants[round]) {
            *s += *rc;
        }
        for s in state.iter_mut() {
            *s = sbox(*s);
        }
        apply_mds(state, &p.mds);
        round += 1;
    }
    for _ in 0..PARTIAL_ROUNDS {
        for (s, rc) in state.iter_mut().zip(&p.round_constants[round]) {
            *s += *rc;
        }
        state[0] = sbox(state[0]);
        apply_mds(state, &p.mds);
        round += 1;
    }
    for _ in 0..half_full {
        for (s, rc) in state.iter_mut().zip(&p.round_constants[round]) {
            *s += *rc;
        }
        for s in state.iter_mut() {
            *s = sbox(*s);
        }
        apply_mds(state, &p.mds);
        round += 1;
    }
}

/// Two-to-one compression: the Merkle-tree node hash.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::{field::Fp, poseidon};
///
/// let h = poseidon::hash2(&Fp::from_u64(1), &Fp::from_u64(2));
/// assert_ne!(h, poseidon::hash2(&Fp::from_u64(2), &Fp::from_u64(1)));
/// ```
pub fn hash2(a: &Fp, b: &Fp) -> Fp {
    // Capacity element carries a domain constant (arity tag).
    let mut state = [*a, *b, Fp::from_u64(2u64 << 32)];
    permute(&mut state);
    state[0]
}

/// Variable-length sponge hash (rate 2, capacity 1).
///
/// The input length is absorbed into the capacity as padding-free domain
/// separation, so `hash_many(&[a])` and `hash_many(&[a, 0])` differ.
pub fn hash_many(inputs: &[Fp]) -> Fp {
    let mut state = [
        Fp::ZERO,
        Fp::ZERO,
        Fp::from_u64(inputs.len() as u64) + Fp::from_u64(1u64 << 40),
    ];
    for chunk in inputs.chunks(2) {
        state[0] += chunk[0];
        if let Some(second) = chunk.get(1) {
            state[1] += *second;
        }
        permute(&mut state);
    }
    if inputs.is_empty() {
        permute(&mut state);
    }
    state[0]
}

/// Hashes arbitrary bytes into the field by bridging through SHA-256.
///
/// Used where byte-level data (e.g. mainchain block hashes) must enter
/// field-level commitments.
pub fn hash_bytes(domain: &str, bytes: &[u8]) -> Fp {
    let digest = crate::sha256::sha256_tagged("zendoo/poseidon-bytes", &[domain.as_bytes(), bytes]);
    let limb = Fp::from_be_bytes_reduced(&digest);
    hash_many(&[limb])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::U256;
    use crate::field::{FieldParams, SecpBase};

    #[test]
    fn sbox_is_permutation_exponent() {
        // gcd(5, p - 1) must be 1 for x^5 to be a bijection.
        let p_minus_1 = SecpBase::MODULUS.wrapping_sub(&U256::ONE);
        // Compute p-1 mod 5 via byte arithmetic.
        let mut rem: u32 = 0;
        for byte in p_minus_1.to_be_bytes() {
            rem = (rem * 256 + byte as u32) % 5;
        }
        assert_ne!(rem, 0, "p-1 must not be divisible by 5");
    }

    #[test]
    fn permutation_changes_state() {
        let mut state = [Fp::ZERO, Fp::ZERO, Fp::ZERO];
        permute(&mut state);
        assert_ne!(state, [Fp::ZERO, Fp::ZERO, Fp::ZERO]);
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut s1 = [Fp::from_u64(1), Fp::from_u64(2), Fp::from_u64(3)];
        let mut s2 = s1;
        permute(&mut s1);
        permute(&mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn hash2_is_not_commutative() {
        let a = Fp::from_u64(17);
        let b = Fp::from_u64(23);
        assert_ne!(hash2(&a, &b), hash2(&b, &a));
    }

    #[test]
    fn hash2_no_trivial_collisions() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..50u64 {
            for j in 0..4u64 {
                let h = hash2(&Fp::from_u64(i), &Fp::from_u64(j));
                assert!(seen.insert(h.to_be_bytes()), "collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn hash_many_length_separated() {
        let a = Fp::from_u64(5);
        assert_ne!(hash_many(&[a]), hash_many(&[a, Fp::ZERO]));
        assert_ne!(hash_many(&[]), hash_many(&[Fp::ZERO]));
    }

    #[test]
    fn hash_many_matches_expected_arity_behaviour() {
        let xs: Vec<Fp> = (0..5).map(Fp::from_u64).collect();
        let h1 = hash_many(&xs);
        let h2 = hash_many(&xs);
        assert_eq!(h1, h2);
        let mut ys = xs.clone();
        ys[4] = Fp::from_u64(6);
        assert_ne!(h1, hash_many(&ys));
    }

    #[test]
    fn hash_bytes_domain_separated() {
        assert_ne!(hash_bytes("a", b"data"), hash_bytes("b", b"data"));
        assert_eq!(hash_bytes("a", b"data"), hash_bytes("a", b"data"));
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = hash2(&Fp::from_u64(1), &Fp::from_u64(0));
        let b = hash2(&Fp::from_u64(1), &Fp::from_u64(1));
        // The outputs must differ in many byte positions.
        let (ab, bb) = (a.to_be_bytes(), b.to_be_bytes());
        let differing = ab.iter().zip(bb.iter()).filter(|(x, y)| x != y).count();
        assert!(differing > 20, "only {differing} differing bytes");
    }
}
