//! Verifiable random function (ECVRF-style) over secp256k1.
//!
//! Used by the Latus consensus protocol (§5.1) for slot-leader selection:
//! a stakeholder proves `output = VRF_sk(epoch_randomness ‖ slot)` and the
//! output is compared against a stake-proportional threshold.
//!
//! Construction: `Γ = sk · H₂C(m)` with a Chaum–Pedersen DLEQ proof that
//! `log_G(PK) = log_{H₂C(m)}(Γ)`; the VRF output is `H(Γ)`.

use crate::curve::{AffinePoint, JacobianPoint};
use crate::field::Fr;
use crate::schnorr::{PublicKey, SecretKey};
use crate::sha256::sha256_tagged;
use serde::{Deserialize, Serialize};

/// Domain tag for hash-to-curve inside the VRF.
const H2C_DOMAIN: &str = "zendoo/vrf-h2c";

/// A VRF output: 32 uniform bytes, a pure function of `(sk, msg)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VrfOutput(pub [u8; 32]);

impl VrfOutput {
    /// Interprets the output as a fraction in `[0, 1)` with 64-bit
    /// precision — used for stake-threshold comparisons.
    pub fn as_unit_fraction(&self) -> f64 {
        let mut high = [0u8; 8];
        high.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(high) as f64 / (u64::MAX as f64 + 1.0)
    }
}

/// A VRF proof `(Γ, c, s)`: the evaluated point plus a DLEQ transcript.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct VrfProof {
    gamma: AffinePoint,
    c: Fr,
    s: Fr,
}

impl VrfProof {
    /// The VRF output bound to this proof.
    pub fn output(&self) -> VrfOutput {
        VrfOutput(sha256_tagged(
            "zendoo/vrf-out",
            &[&self.gamma.to_compressed()],
        ))
    }

    /// Serializes as `Γ ‖ c ‖ s` (97 bytes).
    pub fn to_bytes(&self) -> [u8; 97] {
        let mut out = [0u8; 97];
        out[..33].copy_from_slice(&self.gamma.to_compressed());
        out[33..65].copy_from_slice(&self.c.to_be_bytes());
        out[65..].copy_from_slice(&self.s.to_be_bytes());
        out
    }
}

/// Evaluates the VRF, producing `(output, proof)`.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::schnorr::Keypair;
/// use zendoo_primitives::vrf;
///
/// let kp = Keypair::from_seed(b"forger-1");
/// let (out, proof) = vrf::prove(&kp.secret, b"epoch-7/slot-3");
/// assert_eq!(vrf::verify(&kp.public, b"epoch-7/slot-3", &proof), Some(out));
/// ```
pub fn prove(sk: &SecretKey, msg: &[u8]) -> (VrfOutput, VrfProof) {
    let h = AffinePoint::hash_to_curve(H2C_DOMAIN, msg);
    let gamma = (h * sk.scalar()).to_affine();
    // Deterministic nonce bound to (sk, msg).
    let k_bytes = sha256_tagged("zendoo/vrf-nonce", &[&sk.scalar().to_be_bytes(), msg]);
    let mut k = Fr::from_be_bytes_reduced(&k_bytes);
    if k.is_zero() {
        k = Fr::one();
    }
    let u = (JacobianPoint::generator() * k).to_affine();
    let v = (h * k).to_affine();
    let c = dleq_challenge(&h, &sk.public_key(), &gamma, &u, &v, msg);
    let s = k + c * sk.scalar();
    let proof = VrfProof { gamma, c, s };
    (proof.output(), proof)
}

/// Verifies a VRF proof, returning the bound output on success.
pub fn verify(pk: &PublicKey, msg: &[u8], proof: &VrfProof) -> Option<VrfOutput> {
    if pk.point().is_identity() || proof.gamma.is_identity() {
        return None;
    }
    let h = AffinePoint::hash_to_curve(H2C_DOMAIN, msg);
    // U = s·G - c·PK ; V = s·H - c·Γ — recompute the transcript commitments.
    let u = (JacobianPoint::generator() * proof.s + (pk.point() * proof.c).negate()).to_affine();
    let v = (h * proof.s + (proof.gamma * proof.c).negate()).to_affine();
    let c = dleq_challenge(&h, pk, &proof.gamma, &u, &v, msg);
    if c == proof.c {
        Some(proof.output())
    } else {
        None
    }
}

fn dleq_challenge(
    h: &AffinePoint,
    pk: &PublicKey,
    gamma: &AffinePoint,
    u: &AffinePoint,
    v: &AffinePoint,
    msg: &[u8],
) -> Fr {
    let digest = sha256_tagged(
        "zendoo/vrf-challenge",
        &[
            &h.to_compressed(),
            &pk.to_bytes(),
            &gamma.to_compressed(),
            &u.to_compressed(),
            &v.to_compressed(),
            msg,
        ],
    );
    Fr::from_be_bytes_reduced(&digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::Keypair;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn prove_verify_roundtrip() {
        let kp = Keypair::random(&mut rng());
        let (out, proof) = prove(&kp.secret, b"slot-5");
        assert_eq!(verify(&kp.public, b"slot-5", &proof), Some(out));
    }

    #[test]
    fn output_is_deterministic() {
        let kp = Keypair::from_seed(b"forger");
        let (o1, _) = prove(&kp.secret, b"m");
        let (o2, _) = prove(&kp.secret, b"m");
        assert_eq!(o1, o2);
    }

    #[test]
    fn different_messages_different_outputs() {
        let kp = Keypair::from_seed(b"forger");
        let (o1, _) = prove(&kp.secret, b"m1");
        let (o2, _) = prove(&kp.secret, b"m2");
        assert_ne!(o1, o2);
    }

    #[test]
    fn different_keys_different_outputs() {
        let (o1, _) = prove(&Keypair::from_seed(b"a").secret, b"m");
        let (o2, _) = prove(&Keypair::from_seed(b"b").secret, b"m");
        assert_ne!(o1, o2);
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = Keypair::random(&mut rng());
        let (_, proof) = prove(&kp.secret, b"m1");
        assert!(verify(&kp.public, b"m2", &proof).is_none());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let mut r = rng();
        let kp1 = Keypair::random(&mut r);
        let kp2 = Keypair::random(&mut r);
        let (_, proof) = prove(&kp1.secret, b"m");
        assert!(verify(&kp2.public, b"m", &proof).is_none());
    }

    #[test]
    fn forged_gamma_rejected() {
        let mut r = rng();
        let kp = Keypair::random(&mut r);
        let (_, mut proof) = prove(&kp.secret, b"m");
        proof.gamma = AffinePoint::random(&mut r);
        assert!(verify(&kp.public, b"m", &proof).is_none());
    }

    #[test]
    fn unit_fraction_in_range() {
        let kp = Keypair::from_seed(b"x");
        for i in 0u32..16 {
            let (out, _) = prove(&kp.secret, &i.to_be_bytes());
            let f = out.as_unit_fraction();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
