//! Schnorr signatures over secp256k1.
//!
//! Authorizes mainchain transaction inputs, sidechain payment/backward
//! transactions, BTR/CSW spending rights (§5.5.3.2), and serves as the
//! attestation primitive inside the simulated SNARK backend.
//!
//! The scheme is the classic `(R, s)` Schnorr with deterministic
//! RFC-6979-style nonces: `s = k + e·sk`, `e = H(R ‖ PK ‖ m)`.

use crate::curve::{AffinePoint, JacobianPoint};
use crate::field::Fr;
use crate::sha256::sha256_tagged;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Schnorr secret key (a nonzero scalar).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(Fr);

impl SecretKey {
    /// Generates a fresh random secret key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let sk = Fr::random(rng);
            if !sk.is_zero() {
                return SecretKey(sk);
            }
        }
    }

    /// Derives a secret key deterministically from seed bytes
    /// (for reproducible tests and simulations).
    pub fn from_seed(seed: &[u8]) -> Self {
        let digest = sha256_tagged("zendoo/sk", &[seed]);
        let sk = Fr::from_be_bytes_reduced(&digest);
        if sk.is_zero() {
            // Probability 2^-256; re-derive for totality.
            SecretKey::from_seed(&digest)
        } else {
            SecretKey(sk)
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey((JacobianPoint::generator() * self.0).to_affine())
    }

    /// The underlying scalar (used by the VRF, which shares keys).
    pub(crate) fn scalar(&self) -> Fr {
        self.0
    }

    /// Signs `msg`, domain-separated by `context`.
    pub fn sign(&self, context: &str, msg: &[u8]) -> Signature {
        // Deterministic nonce: k = H(sk ‖ ctx ‖ m), rejecting k = 0.
        let k_bytes = sha256_tagged(
            "zendoo/schnorr-nonce",
            &[&self.0.to_be_bytes(), context.as_bytes(), msg],
        );
        let mut k = Fr::from_be_bytes_reduced(&k_bytes);
        if k.is_zero() {
            k = Fr::one();
        }
        let r_point = (JacobianPoint::generator() * k).to_affine();
        let e = challenge(context, &r_point, &self.public_key(), msg);
        let s = k + e * self.0;
        Signature { r: r_point, s }
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(<redacted>)")
    }
}

/// A Schnorr public key (a curve point).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(AffinePoint);

impl PublicKey {
    /// The underlying curve point.
    pub fn point(&self) -> AffinePoint {
        self.0
    }

    /// Compressed 33-byte encoding.
    pub fn to_bytes(&self) -> [u8; 33] {
        self.0.to_compressed()
    }

    /// Decodes a compressed public key.
    pub fn from_bytes(bytes: &[u8; 33]) -> Option<Self> {
        AffinePoint::from_compressed(bytes).map(PublicKey)
    }

    /// Verifies `sig` over `msg` under this key: `s·G == R + e·PK`.
    pub fn verify(&self, context: &str, msg: &[u8], sig: &Signature) -> bool {
        if self.0.is_identity() || sig.r.is_identity() {
            return false;
        }
        let e = challenge(context, &sig.r, self, msg);
        let lhs = JacobianPoint::generator() * sig.s;
        let rhs = sig.r.to_jacobian() + self.0 * e;
        lhs == rhs
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.to_bytes();
        write!(f, "PublicKey(")?;
        for b in &bytes[..6] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

/// A Schnorr signature `(R, s)`; 65 bytes serialized.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Signature {
    r: AffinePoint,
    s: Fr,
}

impl Signature {
    /// Serializes as `R.compressed ‖ s` (65 bytes).
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..33].copy_from_slice(&self.r.to_compressed());
        out[33..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a 65-byte signature.
    pub fn from_bytes(bytes: &[u8; 65]) -> Option<Self> {
        let mut r_bytes = [0u8; 33];
        r_bytes.copy_from_slice(&bytes[..33]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&bytes[33..]);
        Some(Signature {
            r: AffinePoint::from_compressed(&r_bytes)?,
            s: Fr::from_be_bytes_canonical(&s_bytes)?,
        })
    }
}

/// A keypair convenience bundle.
#[derive(Clone, Debug)]
pub struct Keypair {
    /// The secret half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

impl Keypair {
    /// Generates a fresh keypair.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let secret = SecretKey::random(rng);
        Keypair {
            public: secret.public_key(),
            secret,
        }
    }

    /// Deterministic keypair from a seed (tests/simulations).
    pub fn from_seed(seed: &[u8]) -> Self {
        let secret = SecretKey::from_seed(seed);
        Keypair {
            public: secret.public_key(),
            secret,
        }
    }
}

/// Fiat–Shamir challenge `e = H(ctx ‖ R ‖ PK ‖ m)` as a scalar.
fn challenge(context: &str, r: &AffinePoint, pk: &PublicKey, msg: &[u8]) -> Fr {
    let digest = sha256_tagged(
        "zendoo/schnorr-challenge",
        &[context.as_bytes(), &r.to_compressed(), &pk.to_bytes(), msg],
    );
    Fr::from_be_bytes_reduced(&digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::random(&mut rng());
        let sig = kp.secret.sign("test", b"message");
        assert!(kp.public.verify("test", b"message", &sig));
    }

    #[test]
    fn verification_rejects_wrong_message() {
        let kp = Keypair::random(&mut rng());
        let sig = kp.secret.sign("test", b"message");
        assert!(!kp.public.verify("test", b"other", &sig));
    }

    #[test]
    fn verification_rejects_wrong_context() {
        let kp = Keypair::random(&mut rng());
        let sig = kp.secret.sign("ctx-a", b"message");
        assert!(!kp.public.verify("ctx-b", b"message", &sig));
    }

    #[test]
    fn verification_rejects_wrong_key() {
        let mut r = rng();
        let kp1 = Keypair::random(&mut r);
        let kp2 = Keypair::random(&mut r);
        let sig = kp1.secret.sign("test", b"message");
        assert!(!kp2.public.verify("test", b"message", &sig));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = Keypair::random(&mut rng());
        let sig = kp.secret.sign("test", b"message");
        let decoded = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, decoded);
        assert!(kp.public.verify("test", b"message", &decoded));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = Keypair::random(&mut rng());
        let sig = kp.secret.sign("test", b"message");
        let mut bytes = sig.to_bytes();
        bytes[40] ^= 1;
        if let Some(bad) = Signature::from_bytes(&bytes) {
            assert!(!kp.public.verify("test", b"message", &bad));
        }
    }

    #[test]
    fn deterministic_signing() {
        let kp = Keypair::from_seed(b"seed");
        let s1 = kp.secret.sign("test", b"m");
        let s2 = kp.secret.sign("test", b"m");
        assert_eq!(s1, s2);
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = Keypair::from_seed(b"k");
        let decoded = PublicKey::from_bytes(&kp.public.to_bytes()).unwrap();
        assert_eq!(kp.public, decoded);
    }
}
