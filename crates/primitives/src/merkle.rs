//! Merkle hash trees (paper Definition 2.2, Fig 2) and Merkle proofs.
//!
//! The tree is generic over a [`MerkleHasher`], because the two chains use
//! different node hashes: the mainchain commits with SHA-256
//! ([`Sha256Hasher`]) while the Latus sidechain commits with Poseidon
//! ([`PoseidonHasher`]) so its trees are SNARK-friendly (§5.4).

use crate::field::Fp;
use crate::poseidon;
use crate::sha256::sha256_tagged;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// A 2-to-1 node hash used to build Merkle trees.
///
/// This trait is sealed in spirit: the workspace provides the two hashers
/// the protocol needs, but downstream users may add more (e.g. for tests).
pub trait MerkleHasher {
    /// The node type (a digest or field element).
    type Node: Copy + Eq + Debug + Send + Sync;

    /// Combines two child nodes into a parent node.
    fn combine(left: &Self::Node, right: &Self::Node) -> Self::Node;

    /// The padding node used for absent leaves.
    fn empty() -> Self::Node;
}

/// SHA-256-based hasher over 32-byte nodes (mainchain side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sha256Hasher;

impl MerkleHasher for Sha256Hasher {
    type Node = [u8; 32];

    fn combine(left: &Self::Node, right: &Self::Node) -> Self::Node {
        sha256_tagged("zendoo/merkle-node", &[left, right])
    }

    fn empty() -> Self::Node {
        sha256_tagged("zendoo/merkle-empty", &[])
    }
}

/// Poseidon-based hasher over field-element nodes (sidechain side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoseidonHasher;

impl MerkleHasher for PoseidonHasher {
    type Node = Fp;

    fn combine(left: &Self::Node, right: &Self::Node) -> Self::Node {
        poseidon::hash2(left, right)
    }

    fn empty() -> Self::Node {
        poseidon::hash_many(&[])
    }
}

/// An in-memory Merkle hash tree built from a list of leaves (Fig 2).
///
/// Leaves are padded with [`MerkleHasher::empty`] up to the next power of
/// two. An empty input produces a single empty leaf.
///
/// # Examples
///
/// ```
/// use zendoo_primitives::merkle::{MerkleTree, Sha256Hasher};
///
/// let leaves: Vec<[u8; 32]> = (0u8..5).map(|i| [i; 32]).collect();
/// let tree = MerkleTree::<Sha256Hasher>::from_leaves(leaves.clone());
/// let proof = tree.proof(3).unwrap();
/// assert!(proof.verify(&tree.root(), &leaves[3]));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree<H: MerkleHasher> {
    /// `levels[0]` are the (padded) leaves; the last level is `[root]`.
    levels: Vec<Vec<H::Node>>,
    leaf_count: usize,
}

impl<H: MerkleHasher> MerkleTree<H> {
    /// Builds a tree over `leaves` (padding to a power of two).
    pub fn from_leaves(leaves: Vec<H::Node>) -> Self {
        let leaf_count = leaves.len();
        let mut padded = leaves;
        let width = leaf_count.max(1).next_power_of_two();
        padded.resize(width, H::empty());
        let mut levels = vec![padded];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let next: Vec<H::Node> = prev
                .chunks(2)
                .map(|pair| H::combine(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        MerkleTree { levels, leaf_count }
    }

    /// The root node. A tree over zero leaves has the empty-leaf root.
    pub fn root(&self) -> H::Node {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of real (unpadded) leaves.
    pub fn len(&self) -> usize {
        self.leaf_count
    }

    /// Returns `true` if no real leaves were supplied.
    pub fn is_empty(&self) -> bool {
        self.leaf_count == 0
    }

    /// The (padded) leaf at `index`, if within the padded width.
    pub fn leaf(&self, index: usize) -> Option<H::Node> {
        self.levels[0].get(index).copied()
    }

    /// Produces the Merkle proof for the leaf at `index`.
    ///
    /// Returns `None` if `index` is outside the real leaf range.
    pub fn proof(&self, index: usize) -> Option<MerkleProof<H>> {
        if index >= self.leaf_count.max(1) {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            siblings.push(level[idx ^ 1]);
            idx >>= 1;
        }
        Some(MerkleProof {
            leaf_index: index as u64,
            siblings,
        })
    }
}

/// A proof of membership of a leaf in a [`MerkleTree`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "H::Node: Serialize",
    deserialize = "H::Node: serde::de::DeserializeOwned"
))]
pub struct MerkleProof<H: MerkleHasher> {
    leaf_index: u64,
    siblings: Vec<H::Node>,
}

impl<H: MerkleHasher> MerkleProof<H> {
    /// Constructs a proof from raw parts (used by serialization layers).
    pub fn from_parts(leaf_index: u64, siblings: Vec<H::Node>) -> Self {
        MerkleProof {
            leaf_index,
            siblings,
        }
    }

    /// The index of the proven leaf.
    pub fn leaf_index(&self) -> u64 {
        self.leaf_index
    }

    /// The sibling path, leaf level first.
    pub fn siblings(&self) -> &[H::Node] {
        &self.siblings
    }

    /// Recomputes the root from `leaf` and compares with `root`.
    pub fn verify(&self, root: &H::Node, leaf: &H::Node) -> bool {
        self.compute_root(leaf) == *root
    }

    /// Recomputes the root implied by this path for `leaf`.
    pub fn compute_root(&self, leaf: &H::Node) -> H::Node {
        let mut acc = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            acc = if idx & 1 == 0 {
                H::combine(&acc, sibling)
            } else {
                H::combine(sibling, &acc)
            };
            idx >>= 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<[u8; 32]> {
        (0..n)
            .map(|i| sha256_tagged("leaf", &[&(i as u64).to_be_bytes()]))
            .collect()
    }

    #[test]
    fn single_leaf_tree() {
        let l = leaves(1);
        let tree = MerkleTree::<Sha256Hasher>::from_leaves(l.clone());
        assert_eq!(tree.root(), l[0]);
        let proof = tree.proof(0).unwrap();
        assert!(proof.verify(&tree.root(), &l[0]));
        assert!(proof.siblings().is_empty());
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let t1 = MerkleTree::<Sha256Hasher>::from_leaves(vec![]);
        let t2 = MerkleTree::<Sha256Hasher>::from_leaves(vec![]);
        assert_eq!(t1.root(), t2.root());
        assert!(t1.is_empty());
    }

    #[test]
    fn figure2_eight_leaf_structure() {
        // Fig 2: h1 = H(h21 | h22), h21 = H(h31 | h32) etc.
        let l = leaves(8);
        let tree = MerkleTree::<Sha256Hasher>::from_leaves(l.clone());
        let h = |a: &[u8; 32], b: &[u8; 32]| Sha256Hasher::combine(a, b);
        let h41 = l[0];
        let h31 = h(&h41, &l[1]);
        let h32 = h(&l[2], &l[3]);
        let h33 = h(&l[4], &l[5]);
        let h34 = h(&l[6], &l[7]);
        let h21 = h(&h31, &h32);
        let h22 = h(&h33, &h34);
        assert_eq!(tree.root(), h(&h21, &h22));
        // The paper's example: proving data4 (index 3) requires (h43, h31, h22).
        let proof = tree.proof(3).unwrap();
        assert_eq!(proof.siblings(), &[l[2], h31, h22]);
        assert!(proof.verify(&tree.root(), &l[3]));
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let l = leaves(8);
        let tree = MerkleTree::<Sha256Hasher>::from_leaves(l.clone());
        let proof = tree.proof(2).unwrap();
        assert!(!proof.verify(&tree.root(), &l[3]));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let l = leaves(4);
        let tree = MerkleTree::<Sha256Hasher>::from_leaves(l.clone());
        let other = MerkleTree::<Sha256Hasher>::from_leaves(leaves(5));
        let proof = tree.proof(0).unwrap();
        assert!(!proof.verify(&other.root(), &l[0]));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::<Sha256Hasher>::from_leaves(leaves(5));
        assert!(tree.proof(5).is_none());
        assert!(tree.proof(100).is_none());
    }

    #[test]
    fn poseidon_tree_works() {
        let l: Vec<Fp> = (0..6).map(Fp::from_u64).collect();
        let tree = MerkleTree::<PoseidonHasher>::from_leaves(l.clone());
        for (i, leaf) in l.iter().enumerate() {
            let proof = tree.proof(i).unwrap();
            assert!(proof.verify(&tree.root(), leaf));
        }
    }

    #[test]
    fn padding_affects_root_vs_count() {
        // 5 and 6 identical leaves except the extra one must differ.
        let t5 = MerkleTree::<Sha256Hasher>::from_leaves(leaves(5));
        let t6 = MerkleTree::<Sha256Hasher>::from_leaves(leaves(6));
        assert_ne!(t5.root(), t6.root());
    }

    proptest! {
        #[test]
        fn prop_all_proofs_verify(n in 1usize..40) {
            let l = leaves(n);
            let tree = MerkleTree::<Sha256Hasher>::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.proof(i).unwrap();
                prop_assert!(proof.verify(&tree.root(), leaf));
            }
        }

        #[test]
        fn prop_cross_proofs_fail(n in 2usize..20, i in 0usize..20, j in 0usize..20) {
            prop_assume!(i < n && j < n && i != j);
            let l = leaves(n);
            let tree = MerkleTree::<Sha256Hasher>::from_leaves(l.clone());
            let proof = tree.proof(i).unwrap();
            prop_assert!(!proof.verify(&tree.root(), &l[j]));
        }
    }
}
