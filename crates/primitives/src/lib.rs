//! # zendoo-primitives
//!
//! Cryptographic substrate for the Zendoo reproduction, implemented from
//! scratch on top of the standard library:
//!
//! * [`bigint`] — fixed-width 256-bit integers;
//! * [`field`] — Montgomery-form prime fields (secp256k1 base & scalar);
//! * [`curve`] — secp256k1 group arithmetic with compression and
//!   hash-to-curve;
//! * [`schnorr`] — Schnorr signatures (transaction authorization and the
//!   attestation primitive of the simulated SNARK);
//! * [`vrf`] — an ECVRF used for Ouroboros-style slot-leader selection;
//! * [`sha256`] — FIPS 180-4 SHA-256, double-SHA-256 and a counter PRG;
//! * [`poseidon`] — the SNARK-friendly algebraic hash (paper §5.4);
//! * [`merkle`] — Merkle hash trees and proofs (paper Definition 2.2);
//! * [`smt`] — the fixed-depth sparse Merkle tree behind the Latus MST;
//! * [`digest`] / [`encode`] — canonical ids and deterministic encoding.
//!
//! # Examples
//!
//! ```
//! use zendoo_primitives::{schnorr::Keypair, sha256::sha256};
//!
//! let kp = Keypair::from_seed(b"alice");
//! let msg = sha256(b"pay 5 coins to bob");
//! let sig = kp.secret.sign("example", &msg);
//! assert!(kp.public.verify("example", &msg, &sig));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigint;
pub mod curve;
pub mod digest;
pub mod encode;
pub mod field;
pub mod merkle;
pub mod poseidon;
pub mod schnorr;
pub mod sha256;
pub mod smt;
pub mod vrf;

pub use digest::Digest32;
pub use encode::Encode;
pub use field::{Fp, Fr};
