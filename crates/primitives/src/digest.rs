//! 32-byte digests used as chain-level identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-byte digest (block hash, transaction id, commitment root, …).
///
/// # Examples
///
/// ```
/// use zendoo_primitives::digest::Digest32;
///
/// let d = Digest32::hash_bytes(b"hello");
/// assert_eq!(d, Digest32::hash_bytes(b"hello"));
/// assert_ne!(d, Digest32::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest32(pub [u8; 32]);

impl Digest32 {
    /// The all-zero digest, used as a null/genesis sentinel.
    pub const ZERO: Digest32 = Digest32([0u8; 32]);

    /// SHA-256 of raw bytes.
    pub fn hash_bytes(data: &[u8]) -> Self {
        Digest32(crate::sha256::sha256(data))
    }

    /// Tagged SHA-256 over length-framed segments.
    pub fn hash_tagged(tag: &str, segments: &[&[u8]]) -> Self {
        Digest32(crate::sha256::sha256_tagged(tag, segments))
    }

    /// Returns the underlying bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns `true` for the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Renders the full 64-nibble hex string.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses a 64-nibble hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Digest32(out))
    }
}

impl fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..6] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl fmt::Display for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl AsRef<[u8]> for Digest32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest32 {
    fn from(bytes: [u8; 32]) -> Self {
        Digest32(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let d = Digest32::hash_bytes(b"x");
        assert_eq!(Digest32::from_hex(&d.to_hex()), Some(d));
        assert!(Digest32::from_hex("zz").is_none());
        assert!(Digest32::from_hex(&"0".repeat(63)).is_none());
    }

    #[test]
    fn zero_predicate() {
        assert!(Digest32::ZERO.is_zero());
        assert!(!Digest32::hash_bytes(b"").is_zero());
    }

    #[test]
    fn display_is_abbreviated_but_nonempty() {
        let s = format!("{}", Digest32::hash_bytes(b"y"));
        assert!(s.len() > 6);
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Digest32([0u8; 32]);
        let mut high = [0u8; 32];
        high[0] = 1;
        assert!(a < Digest32(high));
    }
}
