//! Cross-cutting algebraic property tests over the primitives: group
//! laws under random scalars, signature/VRF non-malleability, Poseidon
//! sponge consistency, and SHA-256 against additional published vectors.

use proptest::prelude::*;
use zendoo_primitives::curve::{AffinePoint, JacobianPoint};
use zendoo_primitives::field::{Fp, Fr};
use zendoo_primitives::poseidon;
use zendoo_primitives::schnorr::{Keypair, Signature};
use zendoo_primitives::sha256::sha256;
use zendoo_primitives::vrf;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn sha256_additional_vectors() {
    // NIST CAVS / RFC test vectors.
    assert_eq!(
        hex(&sha256(b"message digest")),
        "f7846f55cf23e14eebeab5b4e1550cad5b509e3348fbc4efa3a1413d393cb650"
    );
    assert_eq!(
        hex(&sha256(b"abcdefghijklmnopqrstuvwxyz")),
        "71c480df93d6ae2f1efad1447c66c9525e316218cf51fc8d9ed832f2daf18b73"
    );
    assert_eq!(
        hex(&sha256(
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
        )),
        "db4bfcbd4da0cd85a60c3c37d3fbd8805c77f15fc6b1fdfe614ee0a7c8fdb4c0"
    );
    assert_eq!(
        hex(&sha256(
            b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
        )),
        "f371bc4a311f2b009eef952dd83ca80e2b60026c8e935592d0f9c308453c813e"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_scalar_mul_is_linear(a in any::<u64>(), b in any::<u64>()) {
        let g = JacobianPoint::generator();
        let (sa, sb) = (Fr::from_u64(a), Fr::from_u64(b));
        prop_assert_eq!(g * sa + g * sb, g * (sa + sb));
        prop_assert_eq!((g * sa) * sb, (g * sb) * sa);
    }

    #[test]
    fn prop_compression_roundtrip_random_points(seed in any::<u64>()) {
        let p = (JacobianPoint::generator() * Fr::from_u64(seed.max(1))).to_affine();
        let decoded = AffinePoint::from_compressed(&p.to_compressed()).unwrap();
        prop_assert_eq!(p, decoded);
        prop_assert!(decoded.is_on_curve());
    }

    #[test]
    fn prop_signatures_not_cross_verifiable(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let kp_a = Keypair::from_seed(&seed_a.to_be_bytes());
        let kp_b = Keypair::from_seed(&seed_b.to_be_bytes());
        let sig = kp_a.secret.sign("prop", b"msg");
        prop_assert!(kp_a.public.verify("prop", b"msg", &sig));
        prop_assert!(!kp_b.public.verify("prop", b"msg", &sig));
    }

    #[test]
    fn prop_signature_roundtrip_bytes(seed in any::<u64>(), msg in any::<[u8; 16]>()) {
        let kp = Keypair::from_seed(&seed.to_be_bytes());
        let sig = kp.secret.sign("prop", &msg);
        let decoded = Signature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert!(kp.public.verify("prop", &msg, &decoded));
    }

    #[test]
    fn prop_vrf_outputs_unique_per_key_and_message(
        seed_a in any::<u32>(), seed_b in any::<u32>(), msg in any::<[u8; 8]>()
    ) {
        prop_assume!(seed_a != seed_b);
        let kp_a = Keypair::from_seed(&seed_a.to_be_bytes());
        let kp_b = Keypair::from_seed(&seed_b.to_be_bytes());
        let (out_a, proof_a) = vrf::prove(&kp_a.secret, &msg);
        let (out_b, _) = vrf::prove(&kp_b.secret, &msg);
        prop_assert_ne!(out_a, out_b);
        // Proofs bind to the key.
        prop_assert!(vrf::verify(&kp_b.public, &msg, &proof_a).is_none());
    }

    #[test]
    fn prop_poseidon_sponge_is_injective_on_prefixes(
        xs in proptest::collection::vec(any::<u64>(), 1..8)
    ) {
        let elems: Vec<Fp> = xs.iter().map(|x| Fp::from_u64(*x)).collect();
        let full = poseidon::hash_many(&elems);
        // Every strict prefix hashes differently (length separation).
        for k in 0..elems.len() {
            prop_assert_ne!(full, poseidon::hash_many(&elems[..k]));
        }
    }

    #[test]
    fn prop_field_sqrt_consistency(x in any::<u64>()) {
        let a = Fp::from_u64(x);
        let sq = a.square();
        let root = sq.sqrt().unwrap();
        prop_assert_eq!(root.square(), sq);
    }
}
